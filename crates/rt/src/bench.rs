//! A minimal wall-clock benchmark runner with the criterion surface the
//! bench targets use: [`Criterion`], [`BenchmarkGroup`], [`Bencher`],
//! [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`](crate::criterion_group) /
//! [`criterion_main!`](crate::criterion_main) macros.
//!
//! Methodology: each benchmark is first calibrated — the iteration
//! count is scaled until one batch takes roughly the target sample
//! duration — then timed for up to `sample_size` batches
//! (early-stopped at a per-benchmark time budget), and the
//! min / p50 / p95 / mean per-iteration times are printed. Every
//! measurement is also collected as a [`BenchResult`] (built on the
//! order-statistics [`Summary`] core), and suites can persist a run as
//! a machine-readable `BENCH_<date>.json` report via
//! [`write_report_merged`] — the input to `ecad bench trend` / `gate`.
//!
//! Command-line arguments (via `cargo bench -- <filter>`): any
//! non-flag argument is a substring filter on benchmark names; the
//! `--test` flag runs every benchmark body exactly once without timing
//! (used to smoke-test bench targets quickly); `--quick` shrinks the
//! calibration target and sample count for cheap CI runs;
//! `--sample-size N` and `--iters N` pin the number of measured
//! batches and the per-batch iteration count (`--iters` disables
//! calibration entirely, for run-to-run comparable iteration counts);
//! `--json PATH` redirects the JSON report, `--no-json` suppresses it.

use crate::json::Json;
use std::path::Path;
use std::time::{Duration, Instant};

/// Opaque identity function that prevents the optimizer from deleting
/// a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One batch's timing context, passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`; the closure's output is passed
    /// through [`black_box`] so it cannot be optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A benchmark name, optionally parameterized (`"gemm/64"`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`, e.g. `BenchmarkId::new("gemm", 64)` → `gemm/64`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter, for groups whose name already carries the
    /// function identity.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(text: &str) -> BenchmarkId {
        BenchmarkId {
            text: text.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(text: String) -> BenchmarkId {
        BenchmarkId { text }
    }
}

// ---------------------------------------------------------------------
// Summary statistics core
//
// Everything the regression gate consumes reduces to these few
// functions, so they are deliberately tiny and heavily property-tested:
// quantiles are *order statistics* of the sample (nearest-rank), never
// interpolated values that could leave the sample's range.
// ---------------------------------------------------------------------

/// Nearest-rank quantile of an ascending-sorted sample: for
/// `q in [0, 1]` returns the element at rank `ceil(q * n)` (1-based),
/// clamped into the sample. The result is always one of the sample's
/// own values, so it is bounded by min/max, permutation-invariant, and
/// monotone in `q`.
///
/// # Panics
///
/// Panics on an empty sample.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    let n = sorted.len();
    let rank = (q.clamp(0.0, 1.0) * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// [`quantile_sorted`] over an unsorted sample (sorts a copy);
/// `None` when empty.
pub fn quantile(samples: &[f64], q: f64) -> Option<f64> {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    if sorted.is_empty() {
        None
    } else {
        Some(quantile_sorted(&sorted, q))
    }
}

/// Converts a per-iteration time to a throughput (iterations per
/// second). The two directions are the same involution — applying it
/// twice round-trips exactly (up to float division).
pub fn throughput_per_s(ns_per_iter: f64) -> f64 {
    1e9 / ns_per_iter
}

/// Converts a throughput (iterations per second) back to ns/iter.
pub fn ns_per_iter(throughput_per_s: f64) -> f64 {
    1e9 / throughput_per_s
}

/// Order-statistics summary of a batch of per-iteration times (ns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Fastest observed batch, ns/iter.
    pub min_ns: f64,
    /// Median (nearest-rank p50), ns/iter.
    pub p50_ns: f64,
    /// Nearest-rank p95, ns/iter.
    pub p95_ns: f64,
    /// Slowest observed batch, ns/iter.
    pub max_ns: f64,
    /// Arithmetic mean, ns/iter.
    pub mean_ns: f64,
}

impl Summary {
    /// Summarizes a sample of per-iteration times. `None` when the
    /// sample is empty or contains a non-finite value.
    pub fn from_samples(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() || samples.iter().any(|x| !x.is_finite()) {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        Some(Summary {
            min_ns: sorted[0],
            p50_ns: quantile_sorted(&sorted, 0.50),
            p95_ns: quantile_sorted(&sorted, 0.95),
            max_ns: sorted[sorted.len() - 1],
            mean_ns: sorted.iter().sum::<f64>() / sorted.len() as f64,
        })
    }

    /// Summarizes the concatenation of two batches, as if they had been
    /// measured as one run. Merging never reorders the quantiles:
    /// `p50 <= p95` holds for any pair of inputs.
    pub fn merge_samples(a: &[f64], b: &[f64]) -> Option<Summary> {
        let mut all = a.to_vec();
        all.extend_from_slice(b);
        Summary::from_samples(&all)
    }

    /// Median throughput, iterations per second.
    pub fn throughput_per_s(&self) -> f64 {
        throughput_per_s(self.p50_ns)
    }
}

/// One benchmark's collected measurement, as recorded by [`Criterion`].
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Full benchmark id, e.g. `gemm/blocked/64`.
    pub id: String,
    /// Per-iteration timing summary.
    pub summary: Summary,
    /// Number of measured batches.
    pub samples: usize,
    /// Iterations per batch (after calibration, or pinned by
    /// `--iters`).
    pub iters_per_sample: u64,
    /// Span-attribution tree captured during the measurement loop when
    /// `--profile` is active (see [`crate::prof`]); `None` otherwise.
    pub profile: Option<crate::prof::ProfileNode>,
}

/// Default target wall-clock duration for one calibrated batch.
const TARGET_SAMPLE: Duration = Duration::from_millis(5);
/// Default hard cap on measurement time per benchmark (calibration
/// excluded).
const TIME_BUDGET: Duration = Duration::from_secs(3);
/// Default number of measured batches per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 50;
/// `--quick` measurement settings: one-millisecond batches, few
/// samples — for CI smoke gates, not precision.
const QUICK_SAMPLE: Duration = Duration::from_millis(1);
const QUICK_SAMPLE_SIZE: usize = 11;

/// The benchmark runner; holds the name filter and default sample
/// count. Construct via [`Criterion::default`].
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    sample_size: usize,
    target_sample: Duration,
    time_budget: Duration,
    fixed_iters: Option<u64>,
    quiet: bool,
    json_out: Option<JsonOut>,
    profile: bool,
    results: Vec<BenchResult>,
}

/// Where `from_args` was told to put the JSON report (the suite main
/// decides the default path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonOut {
    /// `--json PATH`: write exactly here.
    Path(String),
    /// `--no-json`: suppress the report.
    Disabled,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            filter: None,
            test_mode: false,
            sample_size: DEFAULT_SAMPLE_SIZE,
            target_sample: TARGET_SAMPLE,
            time_budget: TIME_BUDGET,
            fixed_iters: None,
            quiet: false,
            json_out: None,
            profile: false,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Applies command-line arguments: non-flag arguments become the
    /// substring filter, `--test` switches to run-once mode, `--quick`
    /// to small calibrated batches, `--sample-size N` / `--iters N`
    /// pin the measurement counts, and `--json PATH` / `--no-json`
    /// control report emission.
    pub fn from_args() -> Criterion {
        Criterion::from_arg_list(std::env::args().skip(1))
    }

    /// [`Criterion::from_args`] over an explicit argument list
    /// (testable).
    pub fn from_arg_list<I: IntoIterator<Item = String>>(args: I) -> Criterion {
        let mut c = Criterion::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--test" => c.test_mode = true,
                "--quick" => {
                    c.quick();
                }
                "--sample-size" => {
                    if let Some(n) = it.next().and_then(|v| v.parse().ok()) {
                        c.sample_size(n);
                    }
                }
                "--iters" => {
                    if let Some(n) = it.next().and_then(|v| v.parse().ok()) {
                        c.iters(n);
                    }
                }
                "--json" => {
                    if let Some(path) = it.next() {
                        c.json_out = Some(JsonOut::Path(path));
                    }
                }
                "--no-json" => c.json_out = Some(JsonOut::Disabled),
                "--profile" => {
                    c.profile();
                }
                // `cargo bench` passes --bench to harness binaries.
                _ if arg.starts_with('-') => {}
                _ => c.filter = Some(arg),
            }
        }
        c
    }

    /// Sets the default number of measured batches.
    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        assert!(n > 0, "sample size must be at least 1");
        self.sample_size = n;
        self
    }

    /// Substring filter on benchmark names (what a positional argument
    /// sets).
    pub fn filter(&mut self, needle: impl Into<String>) -> &mut Criterion {
        self.filter = Some(needle.into());
        self
    }

    /// Quick mode: millisecond calibration target and a small sample
    /// count, for CI smoke runs.
    pub fn quick(&mut self) -> &mut Criterion {
        self.target_sample = QUICK_SAMPLE;
        self.sample_size = QUICK_SAMPLE_SIZE;
        self
    }

    /// Attaches a span-attribution profiler (see [`crate::prof`]) to
    /// each benchmark's measurement loop; the captured tree lands in
    /// [`BenchResult::profile`] and the JSON report's `profile` field.
    pub fn profile(&mut self) -> &mut Criterion {
        self.profile = true;
        self
    }

    /// Pins the per-batch iteration count, disabling calibration — the
    /// knob that makes iteration counts identical run to run.
    pub fn iters(&mut self, n: u64) -> &mut Criterion {
        assert!(n > 0, "iteration count must be at least 1");
        self.fixed_iters = Some(n);
        self
    }

    /// Suppresses the human-readable per-benchmark lines (results are
    /// still collected).
    pub fn quiet(&mut self) -> &mut Criterion {
        self.quiet = true;
        self
    }

    /// Whether `--test` (run each body once, no timing) is active.
    pub fn is_test_mode(&self) -> bool {
        self.test_mode
    }

    /// What `--json` / `--no-json` requested, if anything.
    pub fn json_out(&self) -> Option<&JsonOut> {
        self.json_out.as_ref()
    }

    /// The measurements collected so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Consumes the collected measurements.
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(self, &id.text, f);
        self
    }

    /// Opens a named group; benchmarks in it print as `group/bench`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    fn matches(&self, name: &str) -> bool {
        match &self.filter {
            Some(needle) => name.contains(needle.as_str()),
            None => true,
        }
    }
}

/// A set of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of measured batches for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be at least 1");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().text);
        let sample_size = self.sample_size;
        let saved = self.criterion.sample_size;
        self.criterion.sample_size = sample_size;
        run_benchmark(self.criterion, &full, f);
        self.criterion.sample_size = saved;
        self
    }

    /// Runs one benchmark with an explicit input value, mirroring
    /// criterion's `bench_with_input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group. (Nothing to flush; provided for criterion
    /// call-site compatibility.)
    pub fn finish(self) {}
}

fn run_benchmark<F>(criterion: &mut Criterion, name: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if !criterion.matches(name) {
        return;
    }
    let mut bencher = Bencher {
        iters: criterion.fixed_iters.unwrap_or(1),
        elapsed: Duration::ZERO,
    };

    if criterion.test_mode {
        bencher.iters = 1;
        f(&mut bencher);
        if !criterion.quiet {
            println!("{name}: ok (test mode, 1 iteration)");
        }
        return;
    }

    // Calibrate: grow the batch until it takes about the target sample
    // duration. Skipped entirely when `--iters` pinned the count.
    if criterion.fixed_iters.is_none() {
        loop {
            f(&mut bencher);
            if bencher.elapsed >= criterion.target_sample / 2 || bencher.iters >= 1 << 30 {
                break;
            }
            let per_iter = bencher.elapsed.as_nanos().max(1) / bencher.iters as u128;
            let wanted =
                (criterion.target_sample.as_nanos() / per_iter).max(bencher.iters as u128 * 2);
            bencher.iters = wanted.min(1 << 30) as u64;
        }
    }

    let profiler = criterion
        .profile
        .then(|| crate::prof::Profiler::with_root(crate::prof::ClockKind::Wall, "bench"));
    let install = profiler.as_ref().map(|p| p.install());

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(criterion.sample_size);
    let started = Instant::now();
    for _ in 0..criterion.sample_size {
        f(&mut bencher);
        per_iter_ns.push(bencher.elapsed.as_nanos() as f64 / bencher.iters as f64);
        if started.elapsed() > criterion.time_budget {
            break;
        }
    }
    drop(install);
    let profile = profiler.map(|p| p.report());

    let summary = Summary::from_samples(&per_iter_ns).expect("at least one finite sample");
    if !criterion.quiet {
        println!(
            "{name}: p50 {} (min {}, mean {}, p95 {}; {} samples x {} iters)",
            format_ns(summary.p50_ns),
            format_ns(summary.min_ns),
            format_ns(summary.mean_ns),
            format_ns(summary.p95_ns),
            per_iter_ns.len(),
            bencher.iters,
        );
    }
    criterion.results.push(BenchResult {
        id: name.to_string(),
        summary,
        samples: per_iter_ns.len(),
        iters_per_sample: bencher.iters,
        profile,
    });
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

// ---------------------------------------------------------------------
// Machine-readable reports (`BENCH_<date>.json`)
// ---------------------------------------------------------------------

/// Version stamp for the `BENCH_*.json` schema; bump on any field
/// rename or semantic change (the golden test in `crates/bench` pins
/// the layout).
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Run metadata stamped into every report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportMeta {
    /// UTC calendar date, `YYYY-MM-DD` — also the report's file name
    /// (`BENCH_<date>.json`).
    pub date: String,
    /// UTC timestamp, `YYYY-MM-DDTHH:MM:SSZ`.
    pub created_utc: String,
    /// `git rev-parse HEAD` of the repository the report lands in, or
    /// `"unknown"` outside a checkout.
    pub git_rev: String,
}

impl ReportMeta {
    /// Captures the current time (honoring the `SOURCE_DATE_EPOCH`
    /// reproducible-builds convention) and the git revision resolved
    /// from `repo_dir`.
    pub fn capture(repo_dir: &Path) -> ReportMeta {
        let secs = std::env::var("SOURCE_DATE_EPOCH")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or_else(|| {
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_secs())
                    .unwrap_or(0)
            });
        ReportMeta::at(secs, git_rev(repo_dir))
    }

    /// Builds metadata for an explicit unix time and revision
    /// (testable).
    pub fn at(unix_secs: u64, git_rev: impl Into<String>) -> ReportMeta {
        let (date, created_utc) = utc_date_time(unix_secs);
        ReportMeta {
            date,
            created_utc,
            git_rev: git_rev.into(),
        }
    }
}

/// Resolves `git rev-parse HEAD` in `dir`; `"unknown"` when git or the
/// repository is unavailable.
pub fn git_rev(dir: &Path) -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .current_dir(if dir.as_os_str().is_empty() {
            Path::new(".")
        } else {
            dir
        })
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Splits a unix timestamp into (`YYYY-MM-DD`, `YYYY-MM-DDTHH:MM:SSZ`)
/// UTC strings, via the standard days-to-civil conversion.
pub fn utc_date_time(unix_secs: u64) -> (String, String) {
    let days = unix_secs / 86_400;
    let rem = unix_secs % 86_400;
    let (h, m, s) = (rem / 3600, (rem % 3600) / 60, rem % 60);
    // civil_from_days (Howard Hinnant), valid for the unix era.
    let z = days as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let mo = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if mo <= 2 { y + 1 } else { y };
    let date = format!("{y:04}-{mo:02}-{d:02}");
    let stamp = format!("{date}T{h:02}:{m:02}:{s:02}Z");
    (date, stamp)
}

/// The canonical report file name for a `YYYY-MM-DD` date.
pub fn bench_file_name(date: &str) -> String {
    format!("BENCH_{date}.json")
}

/// Serializes one measurement as a report entry. Field order is part
/// of the schema (the golden test pins it).
pub fn result_to_json(suite: &str, r: &BenchResult) -> Json {
    let entry = Json::object()
        .insert("suite", suite)
        .insert("id", r.id.as_str())
        .insert("ns_per_iter_p50", r.summary.p50_ns)
        .insert("ns_per_iter_p95", r.summary.p95_ns)
        .insert("ns_per_iter_min", r.summary.min_ns)
        .insert("ns_per_iter_max", r.summary.max_ns)
        .insert("ns_per_iter_mean", r.summary.mean_ns)
        .insert("throughput_per_s", r.summary.throughput_per_s())
        .insert("samples", r.samples)
        .insert("iters_per_sample", r.iters_per_sample);
    // Additive field: only present under `--profile`, so the pinned
    // golden layout (no profile) is unchanged.
    match &r.profile {
        Some(node) => entry.insert("profile", node.to_json()),
        None => entry,
    }
}

/// Builds a full report document. Entries are sorted by
/// `(suite, id)` so the serialized report is byte-stable for the same
/// measurements regardless of execution order.
pub fn report_to_json(meta: &ReportMeta, entries: Vec<Json>) -> Json {
    let mut entries = entries;
    entries.sort_by(|a, b| entry_sort_key(a).cmp(&entry_sort_key(b)));
    Json::object()
        .insert("schema_version", BENCH_SCHEMA_VERSION)
        .insert("date", meta.date.as_str())
        .insert("created_utc", meta.created_utc.as_str())
        .insert("git_rev", meta.git_rev.as_str())
        .insert("benchmarks", Json::Array(entries))
}

fn entry_sort_key(e: &Json) -> (String, String) {
    let field = |k: &str| {
        e.get(k)
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string()
    };
    (field("suite"), field("id"))
}

/// Writes (or merges into) a `BENCH_*.json` report: existing entries
/// from *other* suites in the target file are preserved, entries for
/// `suite` are replaced wholesale, and the metadata is refreshed — so
/// the five `cargo bench` binaries can share one per-day file. A
/// malformed or alien existing file is overwritten.
///
/// # Errors
///
/// Propagates the underlying filesystem write error.
pub fn write_report_merged(
    path: &Path,
    suite: &str,
    results: &[BenchResult],
    meta: &ReportMeta,
) -> std::io::Result<()> {
    let mut entries: Vec<Json> = Vec::new();
    if let Ok(text) = std::fs::read_to_string(path) {
        if let Ok(existing) = Json::parse(&text) {
            let version = existing
                .get("schema_version")
                .and_then(Json::as_f64)
                .unwrap_or(0.0);
            if version == BENCH_SCHEMA_VERSION as f64 {
                if let Some(old) = existing.get("benchmarks").and_then(Json::as_array) {
                    entries.extend(
                        old.iter()
                            .filter(|e| {
                                e.get("suite").and_then(Json::as_str) != Some(suite)
                                    && e.get("id").and_then(Json::as_str).is_some()
                            })
                            .cloned(),
                    );
                }
            }
        }
    }
    entries.extend(results.iter().map(|r| result_to_json(suite, r)));
    let report = report_to_json(meta, entries);
    std::fs::write(path, format!("{}\n", report.pretty()))
}

/// Declares a benchmark group function, criterion style:
/// `criterion_group!(benches, bench_a, bench_b);` defines
/// `fn benches()` that runs each listed `fn(&mut Criterion)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::bench::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `fn main()` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 17,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 17);
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("gemm", 64).text, "gemm/64");
        assert_eq!(BenchmarkId::from_parameter(128).text, "128");
        assert_eq!(BenchmarkId::from("plain").text, "plain");
    }

    #[test]
    fn filter_matches_substring() {
        let mut c = Criterion::default();
        c.filter = Some("gemm".to_string());
        assert!(c.matches("group/gemm/64"));
        assert!(!c.matches("group/softmax"));
        c.filter = None;
        assert!(c.matches("anything"));
    }

    #[test]
    fn test_mode_runs_body_once() {
        let mut c = Criterion::default();
        c.test_mode = true;
        let mut calls = 0u32;
        c.bench_function("once", |b| {
            calls += 1;
            b.iter(|| ());
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn group_names_prefix_benchmarks() {
        // Run a real (tiny) measurement through the group path in test
        // mode to cover name joining and sample-size override.
        let mut c = Criterion::default();
        c.test_mode = true;
        let mut group = c.benchmark_group("kernels");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("double", 4), &4u32, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
    }

    #[test]
    fn from_arg_list_parses_measurement_knobs() {
        let args = |s: &str| s.split_whitespace().map(String::from).collect::<Vec<_>>();
        let c = Criterion::from_arg_list(args("--quick --sample-size 7 --iters 3 gemm"));
        assert_eq!(c.sample_size, 7);
        assert_eq!(c.fixed_iters, Some(3));
        assert_eq!(c.filter.as_deref(), Some("gemm"));
        let c = Criterion::from_arg_list(args("--json /tmp/x.json"));
        assert_eq!(c.json_out(), Some(&JsonOut::Path("/tmp/x.json".into())));
        let c = Criterion::from_arg_list(args("--no-json --test --bench"));
        assert_eq!(c.json_out(), Some(&JsonOut::Disabled));
        assert!(c.is_test_mode());
    }

    #[test]
    fn measurements_are_collected_with_pinned_counts() {
        let mut c = Criterion::default();
        c.quiet().iters(4).sample_size(3);
        c.bench_function("tiny/add", |b| b.iter(|| 1 + 1));
        c.bench_function("tiny/mul", |b| b.iter(|| 2 * 2));
        let results = c.take_results();
        assert_eq!(results.len(), 2);
        for r in &results {
            assert_eq!(r.samples, 3);
            assert_eq!(r.iters_per_sample, 4);
            assert!(r.summary.min_ns <= r.summary.p50_ns);
            assert!(r.summary.p50_ns <= r.summary.p95_ns);
            assert!(r.summary.p95_ns <= r.summary.max_ns);
        }
        assert_eq!(results[0].id, "tiny/add");
        assert!(c.results().is_empty(), "take_results drains");
    }

    #[test]
    fn quantile_is_nearest_rank_order_statistic() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_sorted(&sorted, 0.0), 1.0);
        assert_eq!(quantile_sorted(&sorted, 0.25), 1.0);
        assert_eq!(quantile_sorted(&sorted, 0.26), 2.0);
        assert_eq!(quantile_sorted(&sorted, 0.5), 2.0);
        assert_eq!(quantile_sorted(&sorted, 0.95), 4.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 4.0);
        assert_eq!(quantile(&[3.0, 1.0, 2.0], 0.5), Some(2.0));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn summary_rejects_empty_and_non_finite() {
        assert!(Summary::from_samples(&[]).is_none());
        assert!(Summary::from_samples(&[1.0, f64::NAN]).is_none());
        assert!(Summary::from_samples(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn utc_date_time_matches_known_instants() {
        assert_eq!(
            utc_date_time(0),
            ("1970-01-01".to_string(), "1970-01-01T00:00:00Z".to_string())
        );
        // Leap-year boundary: 2000-02-29.
        assert_eq!(utc_date_time(951_782_400).0, "2000-02-29");
        // End of day wraps correctly.
        assert_eq!(utc_date_time(86_399).1, "1970-01-01T23:59:59Z");
        assert_eq!(utc_date_time(86_400).0, "1970-01-02");
        assert_eq!(bench_file_name("1970-01-02"), "BENCH_1970-01-02.json");
    }

    #[test]
    fn reports_merge_per_suite_and_sort_entries() {
        let dir = std::env::temp_dir().join("rt_bench_report_merge");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_1970-01-01.json");
        std::fs::remove_file(&path).ok();
        let result = |id: &str, ns: f64| BenchResult {
            id: id.to_string(),
            summary: Summary::from_samples(&[ns]).unwrap(),
            samples: 1,
            iters_per_sample: 1,
            profile: None,
        };
        let meta = ReportMeta::at(0, "deadbeef");
        write_report_merged(
            &path,
            "zeta",
            &[result("b", 2.0), result("a", 1.0)],
            &meta,
        )
        .unwrap();
        write_report_merged(&path, "alpha", &[result("x", 3.0)], &meta).unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema_version").and_then(Json::as_f64),
            Some(BENCH_SCHEMA_VERSION as f64)
        );
        assert_eq!(doc.get("git_rev").and_then(Json::as_str), Some("deadbeef"));
        let ids: Vec<(String, String)> = doc
            .get("benchmarks")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .map(|e| {
                (
                    e.get("suite").and_then(Json::as_str).unwrap().to_string(),
                    e.get("id").and_then(Json::as_str).unwrap().to_string(),
                )
            })
            .collect();
        // Sorted by (suite, id) regardless of write order.
        assert_eq!(
            ids,
            vec![
                ("alpha".into(), "x".into()),
                ("zeta".into(), "a".into()),
                ("zeta".into(), "b".into()),
            ]
        );
        // Re-running a suite replaces its entries instead of appending.
        write_report_merged(&path, "zeta", &[result("a", 9.0)], &meta).unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let entries = doc.get("benchmarks").and_then(Json::as_array).unwrap();
        assert_eq!(entries.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    // Property suite for the statistics core: the gate's arithmetic is
    // only trustworthy if these hold for arbitrary samples.
    crate::prop! {
        #![cases(128)]
        /// Summary quantiles are order statistics: members of the
        /// sample, bounded by min/max, with p50 <= p95.
        fn summary_quantiles_are_order_statistics(
            samples in crate::check::vec(1.0f64..1e9, 1..48),
        ) {
            let s = Summary::from_samples(&samples).unwrap();
            let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            crate::prop_assert_eq!(s.min_ns, lo);
            crate::prop_assert_eq!(s.max_ns, hi);
            crate::prop_assert!(samples.contains(&s.p50_ns));
            crate::prop_assert!(samples.contains(&s.p95_ns));
            crate::prop_assert!(lo <= s.p50_ns && s.p50_ns <= s.p95_ns && s.p95_ns <= hi);
            crate::prop_assert!(lo <= s.mean_ns && s.mean_ns <= hi);
        }

        /// Summaries are permutation-invariant: shuffling the sample
        /// changes nothing.
        fn summary_is_permutation_invariant(
            samples in crate::check::vec(1.0f64..1e9, 1..32),
            seed in 0u64..u64::MAX,
        ) {
            use crate::rand::seq::SliceRandom;
            use crate::rand::SeedableRng;
            let mut shuffled = samples.clone();
            let mut rng = crate::rand::rngs::StdRng::seed_from_u64(seed);
            shuffled.shuffle(&mut rng);
            crate::prop_assert_eq!(
                Summary::from_samples(&samples),
                Summary::from_samples(&shuffled)
            );
        }

        /// The nearest-rank quantile is monotone in its rank.
        fn quantile_is_monotone_in_rank(
            samples in crate::check::vec(1.0f64..1e9, 1..32),
            qa in 0.0f64..1.0,
            qb in 0.0f64..1.0,
        ) {
            let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
            let mut sorted = samples.clone();
            sorted.sort_by(f64::total_cmp);
            crate::prop_assert!(
                quantile_sorted(&sorted, lo) <= quantile_sorted(&sorted, hi)
            );
        }

        /// ns/iter → throughput → ns/iter round-trips to within float
        /// division error.
        fn throughput_inversion_round_trips(ns in 1e-3f64..1e12) {
            let back = ns_per_iter(throughput_per_s(ns));
            crate::prop_assert!(
                (back - ns).abs() <= ns * 1e-12,
                "{ns} -> {back}"
            );
        }

        /// Merging batches equals summarizing the concatenation, and
        /// never reorders p50 above p95.
        fn merged_batches_never_reorder_quantiles(
            a in crate::check::vec(1.0f64..1e9, 0..24),
            b in crate::check::vec(1.0f64..1e9, 0..24),
        ) {
            crate::prop_assume!(!a.is_empty() || !b.is_empty());
            let merged = Summary::merge_samples(&a, &b).unwrap();
            let mut all = a.clone();
            all.extend_from_slice(&b);
            crate::prop_assert_eq!(Some(merged), Summary::from_samples(&all));
            crate::prop_assert!(merged.p50_ns <= merged.p95_ns);
        }
    }
}
