//! A minimal wall-clock benchmark runner with the criterion surface the
//! bench targets use: [`Criterion`], [`BenchmarkGroup`], [`Bencher`],
//! [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`](crate::criterion_group) /
//! [`criterion_main!`](crate::criterion_main) macros.
//!
//! Methodology: each benchmark is first calibrated — the iteration
//! count is scaled until one batch takes roughly
//! [`TARGET_SAMPLE`] — then timed for up to `sample_size` batches
//! (early-stopped at a [`TIME_BUDGET`] per benchmark), and the
//! min / median / mean per-iteration times are printed. There are no
//! statistical comparisons against saved baselines; redirect the output
//! to a file and diff by hand.
//!
//! Command-line arguments (via `cargo bench -- <filter>`): any
//! non-flag argument is a substring filter on benchmark names; the
//! `--test` flag runs every benchmark body exactly once without timing
//! (used to smoke-test bench targets quickly).

use std::time::{Duration, Instant};

/// Opaque identity function that prevents the optimizer from deleting
/// a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One batch's timing context, passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`; the closure's output is passed
    /// through [`black_box`] so it cannot be optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A benchmark name, optionally parameterized (`"gemm/64"`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`, e.g. `BenchmarkId::new("gemm", 64)` → `gemm/64`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter, for groups whose name already carries the
    /// function identity.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(text: &str) -> BenchmarkId {
        BenchmarkId {
            text: text.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(text: String) -> BenchmarkId {
        BenchmarkId { text }
    }
}

/// Target wall-clock duration for one calibrated batch.
const TARGET_SAMPLE: Duration = Duration::from_millis(5);
/// Hard cap on measurement time per benchmark (calibration excluded).
const TIME_BUDGET: Duration = Duration::from_secs(3);
/// Default number of measured batches per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 50;

/// The benchmark runner; holds the name filter and default sample
/// count. Construct via [`Criterion::default`].
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            filter: None,
            test_mode: false,
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Applies command-line arguments: non-flag arguments become the
    /// substring filter, `--test` switches to run-once mode.
    pub fn from_args() -> Criterion {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                c.test_mode = true;
            } else if !arg.starts_with('-') {
                c.filter = Some(arg);
            }
        }
        c
    }

    /// Sets the default number of measured batches.
    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        assert!(n > 0, "sample size must be at least 1");
        self.sample_size = n;
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(self, &id.text, f);
        self
    }

    /// Opens a named group; benchmarks in it print as `group/bench`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    fn matches(&self, name: &str) -> bool {
        match &self.filter {
            Some(needle) => name.contains(needle.as_str()),
            None => true,
        }
    }
}

/// A set of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of measured batches for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be at least 1");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().text);
        let sample_size = self.sample_size;
        let saved = self.criterion.sample_size;
        self.criterion.sample_size = sample_size;
        run_benchmark(self.criterion, &full, f);
        self.criterion.sample_size = saved;
        self
    }

    /// Runs one benchmark with an explicit input value, mirroring
    /// criterion's `bench_with_input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group. (Nothing to flush; provided for criterion
    /// call-site compatibility.)
    pub fn finish(self) {}
}

fn run_benchmark<F>(criterion: &Criterion, name: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if !criterion.matches(name) {
        return;
    }
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };

    if criterion.test_mode {
        f(&mut bencher);
        println!("{name}: ok (test mode, 1 iteration)");
        return;
    }

    // Calibrate: grow the batch until it takes about TARGET_SAMPLE.
    loop {
        f(&mut bencher);
        if bencher.elapsed >= TARGET_SAMPLE / 2 || bencher.iters >= 1 << 30 {
            break;
        }
        let per_iter = bencher.elapsed.as_nanos().max(1) / bencher.iters as u128;
        let wanted = (TARGET_SAMPLE.as_nanos() / per_iter).max(bencher.iters as u128 * 2);
        bencher.iters = wanted.min(1 << 30) as u64;
    }

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(criterion.sample_size);
    let started = Instant::now();
    for _ in 0..criterion.sample_size {
        f(&mut bencher);
        per_iter_ns.push(bencher.elapsed.as_nanos() as f64 / bencher.iters as f64);
        if started.elapsed() > TIME_BUDGET {
            break;
        }
    }

    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter_ns[0];
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    println!(
        "{name}: median {} (min {}, mean {}; {} samples x {} iters)",
        format_ns(median),
        format_ns(min),
        format_ns(mean),
        per_iter_ns.len(),
        bencher.iters,
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, criterion style:
/// `criterion_group!(benches, bench_a, bench_b);` defines
/// `fn benches()` that runs each listed `fn(&mut Criterion)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::bench::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `fn main()` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 17,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 17);
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("gemm", 64).text, "gemm/64");
        assert_eq!(BenchmarkId::from_parameter(128).text, "128");
        assert_eq!(BenchmarkId::from("plain").text, "plain");
    }

    #[test]
    fn filter_matches_substring() {
        let mut c = Criterion::default();
        c.filter = Some("gemm".to_string());
        assert!(c.matches("group/gemm/64"));
        assert!(!c.matches("group/softmax"));
        c.filter = None;
        assert!(c.matches("anything"));
    }

    #[test]
    fn test_mode_runs_body_once() {
        let mut c = Criterion::default();
        c.test_mode = true;
        let mut calls = 0u32;
        c.bench_function("once", |b| {
            calls += 1;
            b.iter(|| ());
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn group_names_prefix_benchmarks() {
        // Run a real (tiny) measurement through the group path in test
        // mode to cover name joining and sample-size override.
        let mut c = Criterion::default();
        c.test_mode = true;
        let mut group = c.benchmark_group("kernels");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("double", 4), &4u32, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
    }
}
