//! A proptest-style property-testing harness.
//!
//! The [`prop!`](crate::prop) macro defines `#[test]` functions whose
//! arguments are drawn from generators, runs each body over a
//! configurable number of cases, and — on failure — greedily shrinks
//! the input before reporting, printing the seed so the exact failure
//! replays:
//!
//! ```
//! rt::prop! {
//!     #![cases(64)]
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         rt::prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! ```
//!
//! Generators are values implementing [`Gen`]: integer and float
//! ranges work directly, and [`vec`], [`select`], [`ascii_string`],
//! [`from_fn`], and [`map`] compose the rest. A failing case is
//! replayed with `RT_CHECK_SEED=<seed> cargo test <name>`.
//!
//! Shrinking is two-phase. Generators draw from a [`CheckRng`] that
//! records every random word consumed onto a **tape**; when a case
//! fails, the harness first shrinks the *tape* (truncating it, and
//! deleting/zeroing-toward-1/halving/decrementing words) and re-runs
//! the generator over the transformed tape — so shrinking works
//! through [`map`] and [`from_fn`], whose mappings cannot be inverted.
//! A structural pass over [`Gen::shrink`] candidates then polishes the
//! result. Unlike proptest there is still no persistence file: replay
//! goes through the printed seed.

use crate::rand::rngs::StdRng;
use crate::rand::{Rng, RngCore, SeedableRng};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::panic::{self, AssertUnwindSafe};

pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume};

/// Panic payload that marks a case as discarded rather than failed;
/// thrown by [`prop_assume!`](crate::prop_assume).
pub struct Discard;

/// The RNG handed to [`Gen::generate`]: a PCG64 stream whose consumed
/// words are recorded on a tape (record mode), or a tape being played
/// back — possibly after shrinking transformations — with a seeded
/// PRNG supplying any words past its end (replay mode).
///
/// The fallback stream matters: rejection-sampling generators (integer
/// ranges, `char` ranges) would spin forever on a constant-zero
/// suffix, so an exhausted tape hands over to real (but deterministic)
/// randomness instead.
pub struct CheckRng {
    mode: RngMode,
}

enum RngMode {
    Record {
        inner: StdRng,
        tape: Vec<u64>,
    },
    Replay {
        tape: Vec<u64>,
        pos: usize,
        fallback: StdRng,
        consumed: Vec<u64>,
    },
}

/// Seed for the replay-mode fallback stream; fixed so shrink attempts
/// are reproducible run to run.
const TAPE_FALLBACK_SEED: u64 = 0x5EED_FA11_BACC;

impl CheckRng {
    /// A recording generator seeded like [`StdRng::seed_from_u64`].
    pub fn from_seed(seed: u64) -> Self {
        CheckRng {
            mode: RngMode::Record {
                inner: StdRng::seed_from_u64(seed),
                tape: Vec::new(),
            },
        }
    }

    /// A generator that replays `tape` word-for-word, then continues
    /// with a deterministic fallback stream.
    pub fn replay(tape: Vec<u64>) -> Self {
        CheckRng {
            mode: RngMode::Replay {
                tape,
                pos: 0,
                fallback: StdRng::seed_from_u64(TAPE_FALLBACK_SEED),
                consumed: Vec::new(),
            },
        }
    }

    /// Marks a case boundary in record mode: the tape restarts so
    /// [`CheckRng::case_tape`] covers exactly one generated value.
    fn begin_case(&mut self) {
        if let RngMode::Record { tape, .. } = &mut self.mode {
            tape.clear();
        }
    }

    /// The words consumed since the last [`CheckRng::begin_case`]
    /// (record mode) or since construction (replay mode).
    fn case_tape(&self) -> Vec<u64> {
        match &self.mode {
            RngMode::Record { tape, .. } => tape.clone(),
            RngMode::Replay { consumed, .. } => consumed.clone(),
        }
    }
}

impl RngCore for CheckRng {
    fn next_u64(&mut self) -> u64 {
        match &mut self.mode {
            RngMode::Record { inner, tape } => {
                let word = inner.next_u64();
                tape.push(word);
                word
            }
            RngMode::Replay {
                tape,
                pos,
                fallback,
                consumed,
            } => {
                let word = if *pos < tape.len() {
                    let w = tape[*pos];
                    *pos += 1;
                    w
                } else {
                    fallback.next_u64()
                };
                consumed.push(word);
                word
            }
        }
    }
}

/// A value generator: draws a value from an RNG and proposes smaller
/// variants of a failing value.
pub trait Gen {
    /// The type of generated values.
    type Value: Clone + Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut CheckRng) -> Self::Value;

    /// Proposes simpler candidates, most-shrunk first. Returning an
    /// empty list opts out of shrinking for this generator.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }
}

macro_rules! int_gen {
    ($($t:ty),*) => {$(
        impl Gen for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut CheckRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                let lo = self.start;
                let mut out = Vec::new();
                if v > lo {
                    out.push(lo);
                    let mid = lo + (v - lo) / 2;
                    if mid != lo && mid != v {
                        out.push(mid);
                    }
                    out.push(v - 1);
                }
                out.dedup();
                out
            }
        }

        impl Gen for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut CheckRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                let lo = *self.start();
                let mut out = Vec::new();
                if v > lo {
                    out.push(lo);
                    let mid = lo + (v - lo) / 2;
                    if mid != lo && mid != v {
                        out.push(mid);
                    }
                    out.push(v - 1);
                }
                out.dedup();
                out
            }
        }
    )*};
}

int_gen!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_gen {
    ($($t:ty),*) => {$(
        impl Gen for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut CheckRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                let lo = self.start;
                let mut out = Vec::new();
                if v > lo {
                    out.push(lo);
                    let mid = lo + (v - lo) / 2.0;
                    if mid > lo && mid < v {
                        out.push(mid);
                    }
                }
                out
            }
        }

        impl Gen for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut CheckRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                let lo = *self.start();
                let mut out = Vec::new();
                if v > lo {
                    out.push(lo);
                    let mid = lo + (v - lo) / 2.0;
                    if mid > lo && mid < v {
                        out.push(mid);
                    }
                }
                out
            }
        }
    )*};
}

float_gen!(f32, f64);

impl Gen for Range<char> {
    type Value = char;

    fn generate(&self, rng: &mut CheckRng) -> char {
        let lo = self.start as u32;
        let hi = self.end as u32;
        loop {
            if let Some(c) = char::from_u32(rng.gen_range(lo..hi)) {
                return c;
            }
        }
    }
}

/// Length constraint for [`vec`] and [`ascii_string`]; build one from a
/// `usize` (exact length), `Range<usize>`, or `RangeInclusive<usize>`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.end > r.start, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.end() >= r.start(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut CheckRng) -> usize {
        rng.gen_range(self.min..=self.max)
    }
}

/// Generates a `Vec` whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<G: Gen>(element: G, size: impl Into<SizeRange>) -> VecGen<G> {
    VecGen {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecGen<G> {
    element: G,
    size: SizeRange,
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut CheckRng) -> Vec<G::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out = Vec::new();
        // First try shorter vectors: drop to the minimum length, then
        // drop one element at a time from the back.
        if value.len() > self.size.min {
            out.push(value[..self.size.min].to_vec());
            let mut shorter = value.clone();
            shorter.pop();
            out.push(shorter);
        }
        // Then element-wise shrinks, one position at a time.
        for (i, item) in value.iter().enumerate() {
            for candidate in self.element.shrink(item) {
                let mut next = value.clone();
                next[i] = candidate;
                out.push(next);
            }
        }
        out
    }
}

/// Picks uniformly from a fixed list of options; shrinks toward
/// earlier entries.
pub fn select<T: Clone + Debug + PartialEq>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

/// See [`select`].
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone + Debug + PartialEq> Gen for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut CheckRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].clone()
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        match self.options.iter().position(|o| o == value) {
            Some(pos) => self.options[..pos].to_vec(),
            None => Vec::new(),
        }
    }
}

/// Generates strings of printable ASCII (space through `~`) — the
/// equivalent of proptest's `"[ -~]{a,b}"` regex strategy.
pub fn ascii_string(len: impl Into<SizeRange>) -> AsciiString {
    AsciiString { len: len.into() }
}

/// See [`ascii_string`].
pub struct AsciiString {
    len: SizeRange,
}

impl Gen for AsciiString {
    type Value = String;

    fn generate(&self, rng: &mut CheckRng) -> String {
        let len = self.len.sample(rng);
        (0..len)
            .map(|_| rng.gen_range(0x20u8..=0x7e) as char)
            .collect()
    }

    fn shrink(&self, value: &String) -> Vec<String> {
        let mut out = Vec::new();
        if value.len() > self.len.min {
            out.push(value[..self.len.min].to_string());
            out.push(value[..value.len() - 1].to_string());
        }
        // Simplify one character at a time toward 'a'.
        for (i, c) in value.char_indices() {
            if c != 'a' {
                let mut next = value.clone();
                next.replace_range(i..i + 1, "a");
                out.push(next);
            }
        }
        out
    }
}

/// Wraps a closure as a generator. No structural shrink candidates,
/// but failures still minimize through the tape: the harness replays
/// the closure over shrunk word streams.
pub fn from_fn<T, F>(f: F) -> FromFn<F>
where
    T: Clone + Debug,
    F: Fn(&mut CheckRng) -> T,
{
    FromFn { f }
}

/// See [`from_fn`].
pub struct FromFn<F> {
    f: F,
}

impl<T, F> Gen for FromFn<F>
where
    T: Clone + Debug,
    F: Fn(&mut CheckRng) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut CheckRng) -> T {
        (self.f)(rng)
    }
}

/// Applies a function to another generator's output. The mapping
/// cannot be inverted, so there are no structural shrink candidates —
/// instead failures shrink through the tape, re-running the inner
/// generator (and the mapping) over shrunk word streams.
pub fn map<G, O, F>(inner: G, f: F) -> Map<G, F>
where
    G: Gen,
    O: Clone + Debug,
    F: Fn(G::Value) -> O,
{
    Map { inner, f }
}

/// See [`map`].
pub struct Map<G, F> {
    inner: G,
    f: F,
}

impl<G, O, F> Gen for Map<G, F>
where
    G: Gen,
    O: Clone + Debug,
    F: Fn(G::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut CheckRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! tuple_gen {
    ($(($($g:ident / $idx:tt),+))*) => {$(
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);

            fn generate(&self, rng: &mut CheckRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}

tuple_gen! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
}

/// How a single case execution ended.
enum CaseOutcome {
    Pass,
    Discard,
    Fail(String),
}

fn run_case<V, F>(f: &mut F, value: V) -> CaseOutcome
where
    F: FnMut(V),
{
    match panic::catch_unwind(AssertUnwindSafe(|| f(value))) {
        Ok(()) => CaseOutcome::Pass,
        Err(payload) => {
            if payload.downcast_ref::<Discard>().is_some() {
                CaseOutcome::Discard
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                CaseOutcome::Fail((*s).to_string())
            } else if let Some(s) = payload.downcast_ref::<String>() {
                CaseOutcome::Fail(s.clone())
            } else {
                CaseOutcome::Fail("panic with non-string payload".to_string())
            }
        }
    }
}

fn name_seed(name: &str) -> u64 {
    // FNV-1a over the test name gives each property its own stable
    // stream; RT_CHECK_SEED overrides for replay.
    if let Ok(text) = std::env::var("RT_CHECK_SEED") {
        if let Ok(seed) = text.trim().parse::<u64>() {
            return seed;
        }
    }
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Budget for shrink attempts once a failing case is found.
const SHRINK_BUDGET: usize = 2048;

/// Runs `cases` executions of `f` over values drawn from `gen`.
/// Panics with a replay-ready report on the first (shrunk) failure.
///
/// This is the engine behind [`prop!`](crate::prop); call it directly
/// when a property needs a generator expression that the macro grammar
/// can't express.
pub fn run_prop<G, F>(name: &str, cases: usize, gen: G, mut f: F)
where
    G: Gen,
    F: FnMut(G::Value),
{
    let seed = name_seed(name);
    let max_discards = cases.saturating_mul(16).max(64);
    let mut discards = 0usize;
    let mut executed = 0usize;
    let mut rng = CheckRng::from_seed(seed);

    while executed < cases {
        rng.begin_case();
        let value = gen.generate(&mut rng);
        match run_case(&mut f, value.clone()) {
            CaseOutcome::Pass => executed += 1,
            CaseOutcome::Discard => {
                discards += 1;
                if discards > max_discards {
                    panic!(
                        "property '{name}': too many discarded cases \
                         ({discards} discards for {executed} executions); \
                         loosen prop_assume! or the generators"
                    );
                }
            }
            CaseOutcome::Fail(message) => {
                let tape = rng.case_tape();
                let (shrunk, shrunk_message, steps) =
                    shrink_failure(&gen, &mut f, value.clone(), tape);
                panic!(
                    "property '{name}' failed (seed {seed}, case {executed}).\n\
                     original input: {value:?}\n\
                     shrunk input ({steps} steps): {shrunk:?}\n\
                     assertion: {final_msg}\n\
                     replay with: RT_CHECK_SEED={seed} cargo test {name}",
                    final_msg = if shrunk_message.is_empty() {
                        message
                    } else {
                        shrunk_message
                    },
                );
            }
        }
    }
}

/// Minimizes a failing input in two phases. Phase 1 shrinks the
/// *tape* the failing case consumed — truncating it and deleting /
/// setting-to-1 / halving / decrementing individual words — and
/// re-runs the generator over each transformed tape, keeping any
/// regenerated value that still fails. Because this operates below
/// the generator, it minimizes through [`map`] and [`from_fn`] whose
/// mappings cannot be inverted. Phase 2 then greedily polishes with
/// the structural [`Gen::shrink`] candidates. Panic output from
/// candidate executions is suppressed so the final report stays
/// readable.
fn shrink_failure<G, F>(
    gen: &G,
    f: &mut F,
    mut current: G::Value,
    mut tape: Vec<u64>,
) -> (G::Value, String, usize)
where
    G: Gen,
    F: FnMut(G::Value),
{
    // Silence the default panic hook while probing candidates; each
    // probe that still fails would otherwise print a full backtrace.
    // The hook is process-global, so concurrent failing tests may lose
    // their printed location — the panic message itself is unaffected.
    let saved_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));

    let mut message = String::new();
    let mut attempts = 0usize;
    let mut steps = 0usize;

    // Phase 1: tape shrinking. Capped at half the budget so the
    // structural pass always gets a turn.
    'tape: loop {
        if attempts >= SHRINK_BUDGET / 2 {
            break;
        }
        let n = tape.len();
        let mut candidates: Vec<Vec<u64>> = Vec::new();
        if n > 1 {
            candidates.push(tape[..n / 2].to_vec());
            candidates.push(tape[..n - 1].to_vec());
        }
        // Cap per-word transforms so huge tapes don't exhaust the
        // budget in a single round.
        let idxs: Vec<usize> = if n <= 32 {
            (0..n).collect()
        } else {
            (0..32).map(|i| i * n / 32).collect()
        };
        for &i in &idxs {
            let w = tape[i];
            if w > 1 {
                let mut t = tape.clone();
                t[i] = 1;
                candidates.push(t);
                let mut t = tape.clone();
                t[i] = w / 2;
                candidates.push(t);
                let mut t = tape.clone();
                t[i] = w - 1;
                candidates.push(t);
            }
            if n > 1 {
                let mut t = tape.clone();
                t.remove(i);
                candidates.push(t);
            }
        }
        // `Gen::Value` is only `Debug`, so compare candidate values by
        // their debug representation to skip no-op transformations
        // (e.g. a word decrement too small to move the sampled value).
        let current_repr = format!("{current:?}");
        for candidate in candidates {
            if attempts >= SHRINK_BUDGET / 2 {
                break 'tape;
            }
            attempts += 1;
            let mut rng = CheckRng::replay(candidate);
            let value = gen.generate(&mut rng);
            if format!("{value:?}") == current_repr {
                continue;
            }
            if let CaseOutcome::Fail(m) = run_case(f, value.clone()) {
                current = value;
                message = m;
                // Canonicalize to the words actually consumed, so the
                // next round transforms a tape of the right length.
                tape = rng.case_tape();
                steps += 1;
                continue 'tape;
            }
        }
        break;
    }

    // Phase 2: structural polish via `Gen::shrink`.
    'outer: loop {
        for candidate in gen.shrink(&current) {
            if attempts >= SHRINK_BUDGET {
                break 'outer;
            }
            attempts += 1;
            if let CaseOutcome::Fail(m) = run_case(f, candidate.clone()) {
                current = candidate;
                message = m;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }

    panic::set_hook(saved_hook);
    (current, message, steps)
}

/// Defines property-based `#[test]` functions.
///
/// ```
/// rt::prop! {
///     #![cases(64)]
///     /// Reversing twice is the identity.
///     fn reverse_involution(v in rt::check::vec(0u8..255, 0..16)) {
///         let mut w = v.clone();
///         w.reverse();
///         w.reverse();
///         rt::prop_assert_eq!(v, w);
///     }
/// }
/// ```
///
/// The optional `#![cases(N)]` header applies to every function in the
/// invocation (default 64). Each argument is `name in generator`,
/// where the generator is any [`check::Gen`](crate::check::Gen) value.
#[macro_export]
macro_rules! prop {
    (#![cases($cases:expr)] $($rest:tt)*) => {
        $crate::prop!(@fns ($cases); $($rest)*);
    };
    (@fns ($cases:expr); ) => {};
    (@fns ($cases:expr);
        $(#[$meta:meta])*
        fn $name:ident($($var:ident in $gen:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            $crate::check::run_prop(
                stringify!($name),
                $cases,
                ($($gen,)+),
                |($($var,)+)| $body,
            );
        }
        $crate::prop!(@fns ($cases); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::prop!(@fns (64usize); $($rest)*);
    };
}

/// Asserts a condition inside a property body; the harness catches the
/// panic, shrinks, and reports.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Equality assertion counterpart of [`prop_assert!`](crate::prop_assert).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Inequality assertion counterpart of [`prop_assert!`](crate::prop_assert).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

/// Discards the current case (it counts as neither pass nor failure)
/// when the condition is false — for pruning inputs the property does
/// not apply to.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            ::std::panic::panic_any($crate::check::Discard);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_per_seed() {
        let gen = vec(0u32..1000, 0..10);
        let a: Vec<Vec<u32>> = {
            let mut rng = CheckRng::from_seed(99);
            (0..20).map(|_| gen.generate(&mut rng)).collect()
        };
        let b: Vec<Vec<u32>> = {
            let mut rng = CheckRng::from_seed(99);
            (0..20).map(|_| gen.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn int_range_shrinks_toward_start() {
        let gen = 5u32..100;
        let candidates = gen.shrink(&40);
        assert!(candidates.contains(&5));
        assert!(candidates.iter().all(|&c| (5..40).contains(&c)));
        assert!(gen.shrink(&5).is_empty());
    }

    #[test]
    fn vec_shrink_prefers_shorter() {
        let gen = vec(0u8..10, 1..=4);
        let candidates = gen.shrink(&vec![3, 7, 9]);
        assert_eq!(candidates[0], vec![3]); // straight to min length
        assert_eq!(candidates[1], vec![3, 7]); // drop one from the back
    }

    #[test]
    fn select_shrinks_to_earlier_options() {
        let gen = select(vec![1u32, 2, 4, 8, 16]);
        assert_eq!(gen.shrink(&8), vec![1, 2, 4]);
        assert!(gen.shrink(&1).is_empty());
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0usize;
        run_prop("count_cases", 32, (0u32..10,), |(_x,)| {
            // Count via a side effect; the closure is FnMut.
        });
        // run_prop consumed the counting closure; re-run with capture.
        run_prop("count_cases_2", 32, (0u32..10,), |(_x,)| count += 1);
        assert_eq!(count, 32);
    }

    #[test]
    fn failing_property_reports_shrunk_input() {
        let result = std::panic::catch_unwind(|| {
            run_prop("find_big", 256, (0u32..1000,), |(x,)| {
                assert!(x < 500, "x too big");
            });
        });
        let message = match result {
            Err(payload) => payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default(),
            Ok(()) => panic!("property should have failed"),
        };
        // Greedy shrinking must land on the boundary value.
        assert!(
            message.contains("shrunk input") && message.contains("(500,)"),
            "unexpected report: {message}"
        );
        assert!(message.contains("RT_CHECK_SEED="));
    }

    #[test]
    fn assume_discards_without_failing() {
        let mut seen = Vec::new();
        run_prop("assume_evens", 16, (0u32..100,), |(x,)| {
            crate::prop_assume!(x % 2 == 0);
            seen.push(x);
        });
        assert_eq!(seen.len(), 16);
        assert!(seen.iter().all(|x| x % 2 == 0));
    }

    #[test]
    fn excessive_discards_abort() {
        let result = std::panic::catch_unwind(|| {
            run_prop("assume_never", 8, (0u32..100,), |(_x,)| {
                crate::prop_assume!(false);
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn ascii_string_stays_printable() {
        let gen = ascii_string(0..=12);
        let mut rng = CheckRng::from_seed(3);
        for _ in 0..200 {
            let s = gen.generate(&mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn tape_replay_regenerates_identical_value() {
        let gen = (vec(0u32..1000, 0..10), ascii_string(0..=8));
        let mut rng = CheckRng::from_seed(42);
        rng.begin_case();
        let value = gen.generate(&mut rng);
        let tape = rng.case_tape();
        let mut replayed = CheckRng::replay(tape);
        let again = gen.generate(&mut replayed);
        assert_eq!(value, again);
    }

    #[test]
    fn shrinking_reaches_through_map() {
        // `map` has no structural shrink candidates, so any
        // minimization here comes from the tape phase.
        let result = std::panic::catch_unwind(|| {
            run_prop(
                "map_big",
                256,
                (map(0u64..1_000_000, |x| x + 1),),
                |(x,)| {
                    assert!(x <= 1000, "x too big");
                },
            );
        });
        let message = match result {
            Err(payload) => payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default(),
            Ok(()) => panic!("property should have failed"),
        };
        let tail = message
            .split("steps): (")
            .nth(1)
            .unwrap_or_else(|| panic!("unexpected report: {message}"));
        let shrunk: u64 = tail
            .split(',')
            .next()
            .unwrap()
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("unexpected report: {message}"));
        // Still failing, but word-halving must have pulled it close to
        // the 1000 boundary from anywhere in 0..1_000_000.
        assert!(shrunk > 1000, "shrunk value passes: {message}");
        assert!(shrunk <= 4000, "tape shrinking barely moved: {message}");
    }

    #[test]
    fn tuple_shrink_varies_one_component() {
        let gen = (0u32..10, 0u32..10);
        for candidate in gen.shrink(&(4, 7)) {
            let changed = (candidate.0 != 4) as u8 + (candidate.1 != 7) as u8;
            assert_eq!(changed, 1);
        }
    }

    prop! {
        #![cases(64)]
        /// The macro itself, exercised end to end.
        fn macro_addition_commutes(a in 0u64..10_000, b in 0u64..10_000) {
            crate::prop_assert_eq!(a + b, b + a);
        }

        fn macro_vec_reverse_involution(v in vec(0u8..=255, 0..16)) {
            let mut w = v.clone();
            w.reverse();
            w.reverse();
            crate::prop_assert_eq!(v, w);
        }
    }
}
