//! A small JSON value type with parser, serializers, and the [`ToJson`]
//! conversion trait.
//!
//! This replaces `serde_json` for the bench harness's report emission.
//! The design goals, in order: (1) the serializer output is a fixpoint
//! under `parse` (serialize → parse → serialize is byte-identical);
//! (2) object key order is preserved, so reports are stable across
//! runs; (3) numbers that are mathematically integers print without a
//! fractional part, matching what `serde_json::json!` produced for
//! integer literals.
//!
//! Numbers are stored as `f64`. Non-finite values (NaN, ±inf) serialize
//! as `null`, mirroring `serde_json`'s lossy float handling.

use std::fmt;

/// A JSON document: null, boolean, number, string, array, or object.
///
/// Objects are backed by a `Vec` of key/value pairs rather than a map so
/// that insertion order survives serialization — bench reports list
/// their fields in a deliberate order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// The `null` literal.
    Null,
    /// `true` or `false`.
    Bool(bool),
    /// Any JSON number; integers are representable exactly up to 2^53.
    Number(f64),
    /// A string value.
    String(String),
    /// An ordered list of values.
    Array(Vec<Json>),
    /// An ordered list of key/value pairs. Duplicate keys are not
    /// rejected; `get` returns the first match.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an empty object; chain [`Json::insert`] to populate it.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Appends a key/value pair to an object; panics on other variants.
    pub fn insert(mut self, key: &str, value: impl ToJson) -> Json {
        match &mut self {
            Json::Object(pairs) => pairs.push((key.to_string(), value.to_json())),
            other => panic!("Json::insert on non-object {other:?}"),
        }
        self
    }

    /// Looks up a key in an object; `None` on other variants or a
    /// missing key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline-free
    /// layout, like `serde_json::to_string_pretty`.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            // Scalars and empty containers render exactly as in compact
            // form.
            other => {
                use fmt::Write;
                let _ = write!(out, "{other}");
            }
        }
    }

    /// Parses a JSON document, requiring it to span the whole input.
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after document"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    /// Compact serialization: no whitespace, keys in insertion order.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Number(x) => f.write_str(&format_number(*x)),
            Json::String(s) => {
                let mut buf = String::new();
                write_escaped(&mut buf, s);
                f.write_str(&buf)
            }
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(pairs) => {
                f.write_str("{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut buf = String::new();
                    write_escaped(&mut buf, key);
                    f.write_str(&buf)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Renders a number so that whole values within the exact-integer range
/// of f64 print without a fractional part (`3` not `3.0`), and
/// everything else uses Rust's shortest round-trip `Display`. Non-finite
/// values degrade to `null`.
fn format_number(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    const EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
    if x.fract() == 0.0 && x.abs() <= EXACT {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with byte offset and description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.error("document nests too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let low = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let code =
                                    0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.error("unpaired surrogate"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.error("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one whole UTF-8 scalar; input is a &str so
                    // boundaries are valid.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a str");
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let unit =
            u32::from_str_radix(digits, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: a lone 0 or a nonzero digit followed by more.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number spans ASCII");
        let x: f64 = text.parse().map_err(|_| self.error("invalid number"))?;
        Ok(Json::Number(x))
    }
}

/// Conversion into a [`Json`] value — the derive-free stand-in for
/// `serde::Serialize`. Report structs in `crates/bench` implement this
/// by hand, listing fields in display order.
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::String((*self).to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::String(self.clone())
    }
}

macro_rules! number_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Number(*self as f64)
            }
        }
    )*};
}

number_to_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

macro_rules! tuple_to_json {
    ($(($($t:ident / $idx:tt),+))*) => {$(
        impl<$($t: ToJson),+> ToJson for ($($t,)+) {
            fn to_json(&self) -> Json {
                Json::Array(vec![$(self.$idx.to_json()),+])
            }
        }
    )*};
}

tuple_to_json! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

#[cfg(test)]
mod tests {
    use super::{Json, ToJson};

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_string(), text);
        }
    }

    #[test]
    fn whole_numbers_print_without_fraction() {
        assert_eq!(Json::Number(3.0).to_string(), "3");
        assert_eq!(Json::Number(-2.0).to_string(), "-2");
        assert_eq!(Json::Number(0.25).to_string(), "0.25");
        // Above 2^53 the float's own Display is used (a long decimal
        // expansion for 1e300 — Rust never emits scientific notation);
        // what matters is that it parses back to the same value.
        let big = Json::Number(1e300).to_string();
        assert_eq!(Json::parse(&big).unwrap(), Json::Number(1e300));
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Number(f64::NAN).to_string(), "null");
        assert_eq!(Json::Number(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn object_preserves_insertion_order() {
        let v = Json::object()
            .insert("zebra", 1)
            .insert("apple", 2)
            .insert("mango", 3);
        assert_eq!(v.to_string(), r#"{"zebra":1,"apple":2,"mango":3}"#);
    }

    #[test]
    fn get_finds_first_match() {
        let v = Json::object().insert("a", 1).insert("b", 2);
        assert_eq!(v.get("b").and_then(Json::as_f64), Some(2.0));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\t\"quoted\"\\slash\u{1}snowman\u{2603}";
        let v = Json::String(original.to_string());
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            Json::parse(r#""\u2603""#).unwrap(),
            Json::String("\u{2603}".to_string())
        );
        // Surrogate pair for U+1F600.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::String("\u{1f600}".to_string())
        );
    }

    #[test]
    fn nested_document_round_trips() {
        let text = r#"{"name":"ecad","tables":[{"id":1,"acc":0.8525},{"id":2,"acc":0.91}],"ok":true,"note":null}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_string(), text);
    }

    #[test]
    fn pretty_output_reparses_to_same_value() {
        let v = Json::object()
            .insert("rows", vec![1, 2, 3])
            .insert("label", "x")
            .insert("empty_list", Json::Array(vec![]))
            .insert("empty_obj", Json::object());
        let pretty = v.pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), v);
        assert!(pretty.contains("\n  \"rows\": [\n    1,"));
        assert!(pretty.contains("\"empty_list\": []"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "", "{", "[1,]", "{\"a\":}", "01", "1.", "1e", "\"unterminated",
            "nul", "true false", "{\"a\" 1}", "\"\\q\"",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parse_rejects_deep_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn tojson_primitives() {
        assert_eq!(42u32.to_json().to_string(), "42");
        assert_eq!((-3i64).to_json().to_string(), "-3");
        assert_eq!(0.5f32.to_json().to_string(), "0.5");
        assert_eq!("s".to_json().to_string(), "\"s\"");
        assert_eq!(true.to_json().to_string(), "true");
        assert_eq!(None::<u8>.to_json(), Json::Null);
        assert_eq!(vec![1u8, 2].to_json().to_string(), "[1,2]");
    }
}
