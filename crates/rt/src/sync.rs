//! Thread-communication primitives: MPMC channels, scheduler-aware
//! locks, and the pluggable blocking [`backend`].
//!
//! [`channel::unbounded`] and [`channel::bounded`] replace the one
//! `crossbeam::channel` use in the engine's master/worker pool. Both
//! sides are cloneable (multi-producer **and** multi-consumer — plain
//! `std::sync::mpsc` receivers cannot be shared across a worker pool),
//! and disconnection semantics match crossbeam's:
//!
//! * `send` fails only when every receiver is gone;
//! * `recv` drains remaining messages, then fails once every sender is
//!   gone;
//! * `Receiver::iter` yields until the channel is empty *and*
//!   disconnected.
//!
//! Every blocking operation in this module routes through the
//! [`backend`]: an eventcount-style [`backend::Signal`] plus a
//! [`backend::Backend`] trait with two implementations. Outside a
//! model execution the std backend blocks on a real
//! `Mutex`/`Condvar` pair and measures time with `Instant`; inside
//! [`crate::sched::check`] the sched backend parks the calling
//! *virtual* thread, waits in **virtual time**, and turns every
//! operation entry into an explorable scheduling point. Production
//! code and model code therefore share these exact types.
//!
//! [`Mutex`] and [`Condvar`] mirror the `std::sync` surface (including
//! poisoning) but cooperate with the scheduler the same way, so a
//! guard held across a yield point still excludes — and deadlocks
//! still get *detected* rather than hanging the test. [`RwLock`] stays
//! a std re-export: nothing on the engine's hot path blocks on it.

pub use std::sync::RwLock;

use std::sync::{LockResult, PoisonError, TryLockError, TryLockResult};

use crate::sched;

/// The pluggable blocking layer: an eventcount [`backend::Signal`] and
/// the [`backend::Backend`] trait that gives it semantics.
pub mod backend {
    use super::sched;
    use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, OnceLock};
    use std::time::{Duration, Instant};

    /// An eventcount: a monotonically increasing epoch plus a wait
    /// queue. The lost-wakeup-free pattern is
    ///
    /// ```text
    /// loop {
    ///     let e = signal.prepare();
    ///     { check predicate under your own lock; return if satisfied }
    ///     signal.wait(e, deadline);   // no-op if notified since prepare
    /// }
    /// ```
    ///
    /// because a notify that lands between the predicate check and the
    /// wait bumps the epoch and makes the wait return immediately.
    pub struct Signal {
        epoch: StdMutex<u64>,
        cv: StdCondvar,
    }

    impl Signal {
        /// A fresh signal at epoch 0.
        pub const fn new() -> Self {
            Signal {
                epoch: StdMutex::new(0),
                cv: StdCondvar::new(),
            }
        }

        /// Reads the current epoch; pass it to [`Signal::wait`].
        pub fn prepare(&self) -> u64 {
            current().prepare(self)
        }

        /// Blocks until the epoch moves past `epoch` or the absolute
        /// `deadline` (in backend ticks) passes. Returns `false` only
        /// on timeout. Returns immediately if the epoch already moved.
        pub fn wait(&self, epoch: u64, deadline: Option<u64>) -> bool {
            current().wait(self, epoch, deadline)
        }

        /// Bumps the epoch and wakes every waiter.
        pub fn notify_all(&self) {
            current().notify_all(self)
        }

        fn addr(&self) -> usize {
            self as *const Signal as usize
        }
    }

    impl Default for Signal {
        fn default() -> Self {
            Signal::new()
        }
    }

    /// Blocking/time semantics behind [`Signal`] and the lock types.
    /// One tick is one nanosecond; under the std backend ticks count
    /// from process start, under the sched backend they are the model
    /// execution's virtual clock.
    pub trait Backend: Send + Sync {
        /// Current epoch of `s`.
        fn prepare(&self, s: &Signal) -> u64;
        /// Waits for `s` to move past `epoch`; `false` means the
        /// deadline (absolute ticks) expired first.
        fn wait(&self, s: &Signal, epoch: u64, deadline: Option<u64>) -> bool;
        /// Bumps the epoch of `s` and wakes all waiters.
        fn notify_all(&self, s: &Signal);
        /// The clock, in ticks (1 tick = 1ns).
        fn now_ticks(&self) -> u64;
        /// A possible context switch. No-op under std; a scheduling
        /// point under the model checker.
        fn preempt(&self);
    }

    /// Real blocking on OS primitives and wall-clock time.
    pub struct StdBackend;

    /// Virtual blocking through [`crate::sched`]: parks the calling
    /// virtual thread and waits in virtual time.
    pub struct SchedBackend;

    static STD: StdBackend = StdBackend;
    static SCHED: SchedBackend = SchedBackend;

    /// The backend for the calling thread: the sched backend inside a
    /// model execution, the std backend everywhere else.
    pub fn current() -> &'static dyn Backend {
        if sched::active() {
            &SCHED
        } else {
            &STD
        }
    }

    fn origin() -> Instant {
        static ORIGIN: OnceLock<Instant> = OnceLock::new();
        *ORIGIN.get_or_init(Instant::now)
    }

    impl Backend for StdBackend {
        fn prepare(&self, s: &Signal) -> u64 {
            *s.epoch.lock().expect("signal epoch")
        }

        fn wait(&self, s: &Signal, epoch: u64, deadline: Option<u64>) -> bool {
            let mut guard = s.epoch.lock().expect("signal epoch");
            while *guard == epoch {
                match deadline {
                    None => guard = s.cv.wait(guard).expect("signal epoch"),
                    Some(dl) => {
                        let now = self.now_ticks();
                        if now >= dl {
                            return false;
                        }
                        let (g, _) = s
                            .cv
                            .wait_timeout(guard, Duration::from_nanos(dl - now))
                            .expect("signal epoch");
                        guard = g;
                    }
                }
            }
            true
        }

        fn notify_all(&self, s: &Signal) {
            *s.epoch.lock().expect("signal epoch") += 1;
            s.cv.notify_all();
        }

        fn now_ticks(&self) -> u64 {
            u64::try_from(origin().elapsed().as_nanos()).unwrap_or(u64::MAX)
        }

        fn preempt(&self) {}
    }

    impl Backend for SchedBackend {
        fn prepare(&self, s: &Signal) -> u64 {
            *s.epoch.lock().expect("signal epoch")
        }

        fn wait(&self, s: &Signal, epoch: u64, deadline: Option<u64>) -> bool {
            loop {
                if *s.epoch.lock().expect("signal epoch") != epoch {
                    return true;
                }
                // No other virtual thread can run between the epoch
                // check above and the park below, so the re-check on a
                // timed-out wake is the only subtlety.
                let woken = sched::block_on_addr(s.addr(), deadline);
                if !woken {
                    return *s.epoch.lock().expect("signal epoch") != epoch;
                }
            }
        }

        fn notify_all(&self, s: &Signal) {
            *s.epoch.lock().expect("signal epoch") += 1;
            s.cv.notify_all();
            sched::wake_addr(s.addr());
        }

        fn now_ticks(&self) -> u64 {
            sched::now()
        }

        fn preempt(&self) {
            sched::yield_now();
        }
    }

    /// Converts a relative `Duration` into an absolute tick deadline on
    /// the current backend, saturating far-future values.
    pub fn deadline_after(timeout: Duration) -> u64 {
        let ticks = u64::try_from(timeout.as_nanos()).unwrap_or(u64::MAX);
        current().now_ticks().saturating_add(ticks)
    }
}

/// A mutual-exclusion lock with the `std::sync::Mutex` surface
/// (poisoning included) that cooperates with [`crate::sched`]: inside
/// a model execution, `lock` is a scheduling point and contention
/// parks the virtual thread instead of the OS thread, so a deadlock
/// becomes a reported model failure rather than a hung test.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; unlocking wakes parked virtual threads
/// when a model execution is active.
pub struct MutexGuard<'a, T: ?Sized> {
    mx: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates the lock.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    fn addr(&self) -> usize {
        self as *const Mutex<T> as *const () as usize
    }

    fn wrap<'a>(&'a self, g: std::sync::MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        MutexGuard {
            mx: self,
            inner: Some(g),
        }
    }

    /// Acquires the lock, blocking (cooperatively, under a model
    /// execution) until it is free.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if sched::active() {
            backend::current().preempt();
            loop {
                match self.inner.try_lock() {
                    Ok(g) => return Ok(self.wrap(g)),
                    Err(TryLockError::Poisoned(e)) => {
                        return Err(PoisonError::new(self.wrap(e.into_inner())))
                    }
                    Err(TryLockError::WouldBlock) => {
                        sched::block_on_addr(self.addr(), None);
                    }
                }
            }
        } else {
            match self.inner.lock() {
                Ok(g) => Ok(self.wrap(g)),
                Err(e) => Err(PoisonError::new(self.wrap(e.into_inner()))),
            }
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Ok(self.wrap(g)),
            Err(TryLockError::Poisoned(e)) => Err(TryLockError::Poisoned(PoisonError::new(
                self.wrap(e.into_inner()),
            ))),
            Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() && sched::active() {
            sched::wake_addr(self.mx.addr());
        }
    }
}

/// Outcome of a [`Condvar::wait_timeout`]; mirrors
/// `std::sync::WaitTimeoutResult` (which cannot be constructed outside
/// std).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable paired with [`Mutex`], scheduler-aware the
/// same way: under a model execution, waits park the virtual thread
/// and timeouts elapse in virtual time.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates the condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    fn addr(&self) -> usize {
        self as *const Condvar as usize
    }

    /// Atomically releases `guard` and waits for a notification.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        if sched::active() {
            let mx = guard.mx;
            // Dropping the guard releases the lock without yielding;
            // the park below is the next scheduling point, so no
            // notification can be lost in between.
            drop(guard);
            sched::block_on_addr(self.addr(), None);
            mx.lock()
        } else {
            let mut guard = guard;
            let std_g = guard.inner.take().expect("guard present");
            let mx = guard.mx;
            drop(guard);
            match self.inner.wait(std_g) {
                Ok(g) => Ok(mx.wrap(g)),
                Err(e) => Err(PoisonError::new(mx.wrap(e.into_inner()))),
            }
        }
    }

    /// [`Condvar::wait`] with a timeout.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: std::time::Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        if sched::active() {
            let mx = guard.mx;
            drop(guard);
            let deadline = backend::deadline_after(timeout);
            let woken = sched::block_on_addr(self.addr(), Some(deadline));
            let res = WaitTimeoutResult { timed_out: !woken };
            match mx.lock() {
                Ok(g) => Ok((g, res)),
                Err(e) => Err(PoisonError::new((e.into_inner(), res))),
            }
        } else {
            let mut guard = guard;
            let std_g = guard.inner.take().expect("guard present");
            let mx = guard.mx;
            drop(guard);
            match self.inner.wait_timeout(std_g, timeout) {
                Ok((g, r)) => Ok((
                    mx.wrap(g),
                    WaitTimeoutResult {
                        timed_out: r.timed_out(),
                    },
                )),
                Err(e) => {
                    let (g, r) = e.into_inner();
                    Err(PoisonError::new((
                        mx.wrap(g),
                        WaitTimeoutResult {
                            timed_out: r.timed_out(),
                        },
                    )))
                }
            }
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
        if sched::active() {
            sched::wake_one_addr(self.addr());
        }
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
        if sched::active() {
            sched::wake_addr(self.addr());
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use super::backend::{self, Signal};
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Signal,
        not_full: Signal,
        cap: Option<usize>,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// `send` failed because every receiver was dropped; carries the
    /// unsent message back.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// `recv` failed: the channel is empty and every sender was dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Why a `try_recv` returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message queued right now, but senders are still alive.
        Empty,
        /// No message queued and no sender left to produce one.
        Disconnected,
    }

    /// Why a `recv_timeout` / `recv_deadline` returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait expired before a message arrived; senders may still
        /// deliver one later.
        Timeout,
        /// No message queued and no sender left to produce one.
        Disconnected,
    }

    /// Creates a channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a channel that holds at most `cap` queued messages;
    /// `send` blocks while the buffer is full.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero (rendezvous channels are not supported).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "bounded channel capacity must be at least 1");
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Signal::new(),
            not_full: Signal::new(),
            cap,
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message, blocking while a bounded buffer is full.
        /// Fails (returning the message) once every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            backend::current().preempt();
            let mut slot = Some(value);
            loop {
                let epoch = self.shared.not_full.prepare();
                {
                    let mut state = self.shared.state.lock().expect("channel lock");
                    if state.receivers == 0 {
                        return Err(SendError(slot.take().expect("unsent value")));
                    }
                    let full = self
                        .shared
                        .cap
                        .is_some_and(|cap| state.queue.len() >= cap);
                    if !full {
                        state.queue.push_back(slot.take().expect("unsent value"));
                        drop(state);
                        self.shared.not_empty.notify_all();
                        return Ok(());
                    }
                }
                self.shared.not_full.wait(epoch, None);
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel lock").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel lock");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake receivers blocked on an empty queue so they can
                // observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next message, blocking while the channel is
        /// empty. Fails once the channel is empty with no senders left.
        pub fn recv(&self) -> Result<T, RecvError> {
            backend::current().preempt();
            loop {
                let epoch = self.shared.not_empty.prepare();
                {
                    let mut state = self.shared.state.lock().expect("channel lock");
                    if let Some(value) = state.queue.pop_front() {
                        drop(state);
                        self.shared.not_full.notify_all();
                        return Ok(value);
                    }
                    if state.senders == 0 {
                        return Err(RecvError);
                    }
                }
                self.shared.not_empty.wait(epoch, None);
            }
        }

        /// Dequeues the next message, giving up after `timeout`. Like
        /// [`Receiver::recv`] it drains queued messages before reporting
        /// a disconnect, so a message racing the deadline is preferred
        /// over the timeout whenever the lock observes it in time.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            backend::current().preempt();
            let deadline = backend::deadline_after(timeout);
            self.recv_until(deadline)
        }

        /// Dequeues the next message, giving up once `deadline` passes.
        /// A deadline already in the past still drains an immediately
        /// available message (one lock acquisition, no waiting).
        pub fn recv_deadline(
            &self,
            deadline: std::time::Instant,
        ) -> Result<T, RecvTimeoutError> {
            backend::current().preempt();
            // Re-expressed as a relative wait on the backend clock, so
            // a model execution measures it in virtual time.
            let timeout = deadline.saturating_duration_since(std::time::Instant::now());
            let deadline = backend::deadline_after(timeout);
            self.recv_until(deadline)
        }

        /// The shared wait loop behind the timed receives: `deadline`
        /// is absolute backend ticks.
        fn recv_until(&self, deadline: u64) -> Result<T, RecvTimeoutError> {
            loop {
                let epoch = self.shared.not_empty.prepare();
                {
                    let mut state = self.shared.state.lock().expect("channel lock");
                    if let Some(value) = state.queue.pop_front() {
                        drop(state);
                        self.shared.not_full.notify_all();
                        return Ok(value);
                    }
                    if state.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                }
                if backend::current().now_ticks() >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                // A timed-out wait still loops once more: the queue is
                // re-checked before the deadline verdict, so a message
                // landing exactly at the deadline is delivered.
                self.shared.not_empty.wait(epoch, Some(deadline));
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            backend::current().preempt();
            let mut state = self.shared.state.lock().expect("channel lock");
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_all();
                return Ok(value);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of currently queued messages.
        pub fn len(&self) -> usize {
            self.shared.state.lock().expect("channel lock").queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// A blocking iterator: yields messages until the channel is
        /// empty and disconnected.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel lock").receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel lock");
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                // Wake senders blocked on a full buffer so they can
                // observe the disconnect.
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Blocking iterator over received messages; see [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{self, RecvTimeoutError, TryRecvError};
    use super::{Condvar, Mutex};
    use crate::sched::{self, CheckOptions};
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = channel::unbounded::<u8>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        drop(tx);
        tx2.send(2).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = channel::unbounded();
        drop(rx);
        let err = tx.send(7u32).unwrap_err();
        assert_eq!(err.0, 7);
    }

    #[test]
    fn try_recv_distinguishes_empty_and_disconnected() {
        let (tx, rx) = channel::unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn multi_consumer_workers_drain_everything() {
        // The engine's exact topology: one master feeding N workers that
        // share a cloned receiver, results flowing back on a second
        // channel.
        let (req_tx, req_rx) = channel::unbounded::<usize>();
        let (res_tx, res_rx) = channel::unbounded::<usize>();
        let workers = 4;
        let jobs = 200;
        thread::scope(|scope| {
            for _ in 0..workers {
                let req_rx = req_rx.clone();
                let res_tx = res_tx.clone();
                scope.spawn(move || {
                    for job in req_rx.iter() {
                        if res_tx.send(job * 2).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(res_tx);
            for i in 0..jobs {
                req_tx.send(i).unwrap();
            }
            drop(req_tx);
            let mut got: Vec<usize> = res_rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, (0..jobs).map(|i| i * 2).collect::<Vec<_>>());
        });
    }

    #[test]
    fn bounded_channel_blocks_then_unblocks() {
        let (tx, rx) = channel::bounded::<u8>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let handle = thread::spawn(move || {
            // This send must block until the main thread drains one slot.
            tx.send(3).unwrap();
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        handle.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_rejected() {
        let _ = channel::bounded::<u8>(0);
    }

    #[test]
    fn recv_timeout_returns_queued_message_immediately() {
        let (tx, rx) = channel::unbounded();
        tx.send(5u8).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Ok(5));
    }

    #[test]
    fn recv_timeout_times_out_on_empty_channel() {
        let (tx, rx) = channel::unbounded::<u8>();
        let start = std::time::Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(30)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        assert!(start.elapsed() >= Duration::from_millis(30));
        drop(tx);
    }

    #[test]
    fn recv_timeout_reports_disconnect_over_timeout() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(3600)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_deadline_in_the_past_still_drains_queue() {
        let (tx, rx) = channel::unbounded();
        tx.send(1u8).unwrap();
        let past = std::time::Instant::now() - Duration::from_secs(1);
        assert_eq!(rx.recv_deadline(past), Ok(1));
        assert_eq!(
            rx.recv_deadline(past),
            Err(channel::RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn recv_timeout_wakes_on_late_send() {
        let (tx, rx) = channel::unbounded();
        let handle = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            tx.send(42u8).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)), Ok(42));
        handle.join().unwrap();
    }

    #[test]
    fn len_tracks_queue_depth() {
        let (tx, rx) = channel::unbounded();
        assert!(rx.is_empty());
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        let _ = rx.recv();
        assert_eq!(rx.len(), 1);
    }

    #[test]
    fn mutex_and_condvar_work_under_std_backend() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock().unwrap();
            *ready = true;
            cv.notify_all();
            drop(ready);
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock().unwrap();
        while !*ready {
            ready = cv.wait(ready).unwrap();
        }
        handle.join().unwrap();
        let (g, res) = cv
            .wait_timeout(ready, Duration::from_millis(5))
            .unwrap();
        assert!(res.timed_out());
        assert!(*g);
    }

    #[test]
    fn channel_disconnect_vs_delivery_under_model() {
        // Every interleaving of "send 9" vs "drop the sender" resolves
        // to exactly one of two outcomes — never a timeout, because the
        // parent only blocks at join, letting virtual time advance only
        // after the outcome is sealed.
        let report = sched::check(CheckOptions::default(), || {
            let (tx, rx) = channel::unbounded::<u8>();
            let h = sched::spawn(move || rx.recv_timeout(Duration::from_millis(5)));
            if sched::choice(2) == 0 {
                tx.send(9).unwrap();
                assert_eq!(h.join(), Ok(9));
            } else {
                drop(tx);
                assert_eq!(h.join(), Err(RecvTimeoutError::Disconnected));
            }
        });
        report.assert_pass();
        assert!(report.executions > 1);
    }

    #[test]
    fn channel_timeout_elapses_in_virtual_time() {
        let report = sched::check(CheckOptions::default(), || {
            let (tx, rx) = channel::unbounded::<u8>();
            let h = sched::spawn(move || rx.recv_timeout(Duration::from_millis(5)));
            // Sender stays alive but silent: the receiver must time
            // out — after 5ms of *virtual* time, not wall clock.
            assert_eq!(h.join(), Err(RecvTimeoutError::Timeout));
            assert!(sched::now() >= 5_000_000);
            drop(tx);
        });
        report.assert_pass();
    }

    #[test]
    fn mutex_excludes_across_yield_points_under_model() {
        let report = sched::check(CheckOptions::default(), || {
            let m = Arc::new(Mutex::new(0u32));
            let m2 = Arc::clone(&m);
            let h = sched::spawn(move || {
                let mut g = m2.lock().unwrap();
                let v = *g;
                sched::yield_now();
                *g = v + 1;
            });
            {
                let mut g = m.lock().unwrap();
                let v = *g;
                sched::yield_now();
                *g = v + 1;
            }
            h.join();
            assert_eq!(*m.lock().unwrap(), 2);
        });
        report.assert_pass();
    }

    #[test]
    fn explorer_finds_lost_update_without_a_lock() {
        // The same read-modify-write as above but unsynchronized: the
        // checker must find the interleaving where one increment is
        // lost. This is the checker's teeth at the primitive level.
        let report = sched::check(CheckOptions::default(), || {
            let c = Arc::new(AtomicU32::new(0));
            let c2 = Arc::clone(&c);
            let h = sched::spawn(move || {
                let v = c2.load(Ordering::SeqCst);
                sched::yield_now();
                c2.store(v + 1, Ordering::SeqCst);
            });
            let v = c.load(Ordering::SeqCst);
            sched::yield_now();
            c.store(v + 1, Ordering::SeqCst);
            h.join();
            assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
        });
        let failure = report.failure.expect("lost update must be found");
        assert!(failure.message.contains("lost update"), "{}", failure.message);
        // The failing schedule replays to the identical failure.
        let token: sched::Schedule = failure.schedule.to_string().parse().unwrap();
        let replayed = sched::replay(&token, || {
            let c = Arc::new(AtomicU32::new(0));
            let c2 = Arc::clone(&c);
            let h = sched::spawn(move || {
                let v = c2.load(Ordering::SeqCst);
                sched::yield_now();
                c2.store(v + 1, Ordering::SeqCst);
            });
            let v = c.load(Ordering::SeqCst);
            sched::yield_now();
            c.store(v + 1, Ordering::SeqCst);
            h.join();
            assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
        })
        .expect("replay reproduces");
        assert_eq!(format!("{failure}"), format!("{replayed}"));
    }
}
