//! Thread-communication primitives: MPMC channels and lock re-exports.
//!
//! [`channel::unbounded`] and [`channel::bounded`] replace the one
//! `crossbeam::channel` use in the engine's master/worker pool. Both
//! sides are cloneable (multi-producer **and** multi-consumer — plain
//! `std::sync::mpsc` receivers cannot be shared across a worker pool),
//! and disconnection semantics match crossbeam's:
//!
//! * `send` fails only when every receiver is gone;
//! * `recv` drains remaining messages, then fails once every sender is
//!   gone;
//! * `Receiver::iter` yields until the channel is empty *and*
//!   disconnected.
//!
//! The implementation is a mutex-guarded ring with two condvars — not a
//! lock-free queue. For the engine's workload (one candidate genome per
//! message, milliseconds of evaluation per item) the lock is invisible
//! next to the work.
//!
//! [`Mutex`] and [`RwLock`] are re-exported from `std` as the
//! `parking_lot` replacements; `std`'s poisoning API is the only
//! difference callers see.

pub use std::sync::{Mutex, RwLock};

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        cap: Option<usize>,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// `send` failed because every receiver was dropped; carries the
    /// unsent message back.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// `recv` failed: the channel is empty and every sender was dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Why a `try_recv` returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message queued right now, but senders are still alive.
        Empty,
        /// No message queued and no sender left to produce one.
        Disconnected,
    }

    /// Why a `recv_timeout` / `recv_deadline` returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait expired before a message arrived; senders may still
        /// deliver one later.
        Timeout,
        /// No message queued and no sender left to produce one.
        Disconnected,
    }

    /// Creates a channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a channel that holds at most `cap` queued messages;
    /// `send` blocks while the buffer is full.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero (rendezvous channels are not supported).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "bounded channel capacity must be at least 1");
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message, blocking while a bounded buffer is full.
        /// Fails (returning the message) once every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().expect("channel lock");
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = self
                    .shared
                    .cap
                    .is_some_and(|cap| state.queue.len() >= cap);
                if !full {
                    state.queue.push_back(value);
                    drop(state);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                state = self
                    .shared
                    .not_full
                    .wait(state)
                    .expect("channel lock");
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel lock").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel lock");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake receivers blocked on an empty queue so they can
                // observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next message, blocking while the channel is
        /// empty. Fails once the channel is empty with no senders left.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().expect("channel lock");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .not_empty
                    .wait(state)
                    .expect("channel lock");
            }
        }

        /// Dequeues the next message, giving up after `timeout`. Like
        /// [`Receiver::recv`] it drains queued messages before reporting
        /// a disconnect, so a message racing the deadline is preferred
        /// over the timeout whenever the lock observes it in time.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            // `Instant::checked_add` saturates huge timeouts to "wait
            // forever" semantics instead of panicking on overflow.
            match std::time::Instant::now().checked_add(timeout) {
                Some(deadline) => self.recv_deadline(deadline),
                None => self.recv().map_err(|RecvError| RecvTimeoutError::Disconnected),
            }
        }

        /// Dequeues the next message, giving up once `deadline` passes.
        /// A deadline already in the past still drains an immediately
        /// available message (one lock acquisition, no waiting).
        pub fn recv_deadline(
            &self,
            deadline: std::time::Instant,
        ) -> Result<T, RecvTimeoutError> {
            let mut state = self.shared.state.lock().expect("channel lock");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _timed_out) = self
                    .shared
                    .not_empty
                    .wait_timeout(state, remaining)
                    .expect("channel lock");
                // Spurious wakeups and timed-out waits both loop back to
                // re-check the queue: a message that landed exactly at
                // the deadline is still delivered.
                state = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().expect("channel lock");
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of currently queued messages.
        pub fn len(&self) -> usize {
            self.shared.state.lock().expect("channel lock").queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// A blocking iterator: yields messages until the channel is
        /// empty and disconnected.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel lock").receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel lock");
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                // Wake senders blocked on a full buffer so they can
                // observe the disconnect.
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Blocking iterator over received messages; see [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{self, TryRecvError};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = channel::unbounded::<u8>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        drop(tx);
        tx2.send(2).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = channel::unbounded();
        drop(rx);
        let err = tx.send(7u32).unwrap_err();
        assert_eq!(err.0, 7);
    }

    #[test]
    fn try_recv_distinguishes_empty_and_disconnected() {
        let (tx, rx) = channel::unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn multi_consumer_workers_drain_everything() {
        // The engine's exact topology: one master feeding N workers that
        // share a cloned receiver, results flowing back on a second
        // channel.
        let (req_tx, req_rx) = channel::unbounded::<usize>();
        let (res_tx, res_rx) = channel::unbounded::<usize>();
        let workers = 4;
        let jobs = 200;
        thread::scope(|scope| {
            for _ in 0..workers {
                let req_rx = req_rx.clone();
                let res_tx = res_tx.clone();
                scope.spawn(move || {
                    for job in req_rx.iter() {
                        if res_tx.send(job * 2).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(res_tx);
            for i in 0..jobs {
                req_tx.send(i).unwrap();
            }
            drop(req_tx);
            let mut got: Vec<usize> = res_rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, (0..jobs).map(|i| i * 2).collect::<Vec<_>>());
        });
    }

    #[test]
    fn bounded_channel_blocks_then_unblocks() {
        let (tx, rx) = channel::bounded::<u8>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let handle = thread::spawn(move || {
            // This send must block until the main thread drains one slot.
            tx.send(3).unwrap();
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        handle.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_rejected() {
        let _ = channel::bounded::<u8>(0);
    }

    #[test]
    fn recv_timeout_returns_queued_message_immediately() {
        let (tx, rx) = channel::unbounded();
        tx.send(5u8).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Ok(5));
    }

    #[test]
    fn recv_timeout_times_out_on_empty_channel() {
        let (tx, rx) = channel::unbounded::<u8>();
        let start = std::time::Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(30)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        assert!(start.elapsed() >= Duration::from_millis(30));
        drop(tx);
    }

    #[test]
    fn recv_timeout_reports_disconnect_over_timeout() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(3600)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_deadline_in_the_past_still_drains_queue() {
        let (tx, rx) = channel::unbounded();
        tx.send(1u8).unwrap();
        let past = std::time::Instant::now() - Duration::from_secs(1);
        assert_eq!(rx.recv_deadline(past), Ok(1));
        assert_eq!(
            rx.recv_deadline(past),
            Err(channel::RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn recv_timeout_wakes_on_late_send() {
        let (tx, rx) = channel::unbounded();
        let handle = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            tx.send(42u8).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)), Ok(42));
        handle.join().unwrap();
    }

    #[test]
    fn len_tracks_queue_depth() {
        let (tx, rx) = channel::unbounded();
        assert!(rx.is_empty());
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        let _ = rx.recv();
        assert_eq!(rx.len(), 1);
    }
}
