//! Hierarchical profiler: span call trees with self/total attribution.
//!
//! [`obs`](crate::obs) spans record flat per-name histograms; this
//! module adds the structure those histograms lack. Each thread keeps a
//! parent/child span stack per [`Profiler`], accumulating into an
//! index-linked local tree with **no per-call allocation** — span names
//! are `&'static str` (the interned span-path IDs), child lookup is a
//! linear scan over a node's few children, and nothing is boxed on
//! enter/exit. Whenever a thread's span stack empties, the local tree's
//! deltas are merged into the profiler's shared master tree, so worker
//! trees fold into the engine's master tree at evaluation granularity
//! rather than per span.
//!
//! Exports are deterministic: children are sorted by name (cross-thread
//! merge order cannot leak into the bytes), and the
//! [`ClockKind::Ticks`] clock advances a fixed [`TICK_NS`] per read so
//! a seeded single-thread run produces byte-identical profile JSON —
//! the same determinism bar the JSONL traces meet.
//!
//! Two ways into the tree:
//!
//! * [`span`] / [`prof_span!`] — leaf kernels (GEMM, activations) that
//!   have no `Obs` handle record under the innermost profiler
//!   [`install`](Profiler::install)ed on the calling thread. When none
//!   is installed the cost is one thread-local `Cell` read.
//! * `Obs` spans — when a profiler is attached to an `Obs` (see
//!   `ObsBuilder::profiler`), every `Obs::span` enters it directly, so
//!   the engine's existing `train`/`evaluate` spans become interior
//!   nodes above the kernel spans.
//!
//! Out-of-order closes are tolerated: closing a span also closes any
//! younger spans still open above it (they are charged up to the same
//! instant), and closing an already-closed span is a no-op. This keeps
//! the tree invariants — a child's total never exceeds its parent's,
//! and self time is exactly total minus the sum of child totals —
//! regardless of drop order.

use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::Json;

/// Schema version stamped into exported profile JSON documents.
pub const PROFILE_SCHEMA_VERSION: u64 = 1;

/// Nanoseconds the [`ClockKind::Ticks`] clock advances per read.
pub const TICK_NS: u64 = 1_000;

/// Time source for a [`Profiler`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ClockKind {
    /// Real monotonic time ([`Instant`]).
    Wall,
    /// A deterministic virtual clock: every read advances a shared
    /// counter by [`TICK_NS`], so durations are a pure function of the
    /// sequence of clock reads. A seeded single-thread run therefore
    /// exports byte-identical profile JSON run to run.
    Ticks,
}

impl ClockKind {
    /// Parses `"wall"` or `"ticks"`.
    pub fn parse(s: &str) -> Option<ClockKind> {
        match s {
            "wall" => Some(ClockKind::Wall),
            "ticks" => Some(ClockKind::Ticks),
            _ => None,
        }
    }

    /// The name [`parse`](Self::parse) accepts, as stamped into JSON.
    pub fn name(self) -> &'static str {
        match self {
            ClockKind::Wall => "wall",
            ClockKind::Ticks => "ticks",
        }
    }
}

static NEXT_PROFILER_ID: AtomicU64 = AtomicU64::new(1);

struct Shared {
    id: u64,
    clock: ClockKind,
    root: &'static str,
    epoch: Instant,
    ticks: AtomicU64,
    master: Mutex<MergedNode>,
    /// Imported subtrees (e.g. cross-wire worker profiles) grafted
    /// under the root at export time, keyed by graft name.
    grafts: Mutex<Vec<(String, ProfileNode)>>,
}

impl Shared {
    fn now(&self) -> u64 {
        match self.clock {
            ClockKind::Wall => self.epoch.elapsed().as_nanos() as u64,
            ClockKind::Ticks => self.ticks.fetch_add(TICK_NS, Ordering::Relaxed) + TICK_NS,
        }
    }
}

#[derive(Default)]
struct MergedNode {
    total_ns: u64,
    calls: u64,
    children: Vec<(&'static str, MergedNode)>,
}

impl MergedNode {
    fn child(&mut self, name: &'static str) -> &mut MergedNode {
        if let Some(i) = self.children.iter().position(|(n, _)| *n == name) {
            return &mut self.children[i].1;
        }
        self.children.push((name, MergedNode::default()));
        &mut self.children.last_mut().unwrap().1
    }
}

/// Handle to a hierarchical span collector. Cloning shares the
/// underlying tree; the handle is `Send + Sync` and cheap to clone.
#[derive(Clone)]
pub struct Profiler {
    shared: Arc<Shared>,
}

impl Profiler {
    /// A profiler whose exported root node is named `engine`.
    pub fn new(clock: ClockKind) -> Profiler {
        Profiler::with_root(clock, "engine")
    }

    /// A profiler with an explicit root-node name.
    pub fn with_root(clock: ClockKind, root: &'static str) -> Profiler {
        Profiler {
            shared: Arc::new(Shared {
                id: NEXT_PROFILER_ID.fetch_add(1, Ordering::Relaxed),
                clock,
                root,
                epoch: Instant::now(),
                ticks: AtomicU64::new(0),
                master: Mutex::new(MergedNode::default()),
                grafts: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The clock this profiler reads.
    pub fn clock(&self) -> ClockKind {
        self.shared.clock
    }

    /// Installs this profiler as the calling thread's current one:
    /// [`span`] records under it until the guard drops. Installs nest;
    /// the innermost wins. Dropping the guard flushes any completed
    /// spans to the master tree.
    pub fn install(&self) -> InstallGuard {
        DEPTH.with(|d| d.set(d.get() + 1));
        STATE.with(|s| s.borrow_mut().installed.push(self.clone()));
        InstallGuard {
            _not_send: PhantomData,
        }
    }

    /// Opens a span in this profiler on the calling thread (used by
    /// `Obs` spans; kernels use the ambient [`span`] instead).
    pub fn enter(&self, name: &'static str) -> ProfGuard {
        enter_in(&self.shared, name)
    }

    /// Exports the merged call tree. Only spans flushed to the master
    /// tree are included — a thread flushes whenever its span stack
    /// empties and when an [`InstallGuard`] drops — so call this after
    /// workers have finished. Children are name-sorted, making the
    /// export invariant to thread merge order.
    pub fn report(&self) -> ProfileNode {
        let master = self
            .shared
            .master
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut root = export(self.shared.root, &master);
        drop(master);
        // Graft imported subtrees (cross-wire worker profiles) as
        // additional top-level children, renamed to their graft key.
        // Children stay name-sorted, so a set of grafts exports the
        // same bytes no matter the order they arrived in.
        let grafts = self
            .shared
            .grafts
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for (name, sub) in grafts.iter() {
            let mut sub = sub.clone();
            sub.name = name.clone();
            root.children.push(sub);
        }
        drop(grafts);
        root.children.sort_by(|a, b| a.name.cmp(&b.name));
        // The root is synthetic (never itself closed): its total is the
        // sum of its top-level phases and it has no self time.
        root.total_ns = root.children.iter().map(|c| c.total_ns).sum();
        root.self_ns = 0;
        root.calls = 1;
        root
    }

    /// Grafts an imported subtree (e.g. a worker's profile shipped over
    /// the wire) under the root as a top-level child named `name`.
    /// Attaching under an existing name replaces the previous subtree —
    /// periodic snapshots are cumulative, so the latest wins — and the
    /// export stays invariant to attach order because [`report`]
    /// name-sorts its children.
    ///
    /// [`report`]: Profiler::report
    pub fn attach_subtree(&self, name: &str, subtree: ProfileNode) {
        let mut grafts = self
            .shared
            .grafts
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(slot) = grafts.iter_mut().find(|(n, _)| n == name) {
            slot.1 = subtree;
        } else {
            grafts.push((name.to_string(), subtree));
        }
    }

    /// Total seconds per top-level phase (depth-1 child of the root),
    /// name-sorted — the shape the engine mirrors into gauges.
    pub fn phase_seconds(&self) -> Vec<(String, f64)> {
        self.report()
            .children
            .iter()
            .map(|c| (c.name.clone(), c.total_ns as f64 / 1e9))
            .collect()
    }
}

fn export(name: &str, node: &MergedNode) -> ProfileNode {
    let mut children: Vec<ProfileNode> =
        node.children.iter().map(|(n, c)| export(n, c)).collect();
    children.sort_by(|a, b| a.name.cmp(&b.name));
    let child_total: u64 = children.iter().map(|c| c.total_ns).sum();
    ProfileNode {
        name: name.to_string(),
        total_ns: node.total_ns,
        self_ns: node.total_ns.saturating_sub(child_total),
        calls: node.calls,
        children,
    }
}

/// Keeps a [`Profiler`] installed on the current thread; see
/// [`Profiler::install`]. Not `Send`: it must drop on the thread that
/// created it.
pub struct InstallGuard {
    _not_send: PhantomData<*const ()>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let popped = STATE.with(|s| s.borrow_mut().installed.pop());
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        if let Some(p) = popped {
            // Flush completed spans so a worker's tree reaches the
            // master even if this thread never opens another span.
            STATE.with(|s| s.borrow_mut().flush(&p.shared));
        }
    }
}

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
    static STATE: RefCell<ThreadState> = RefCell::new(ThreadState::default());
}

#[derive(Default)]
struct ThreadState {
    installed: Vec<Profiler>,
    trees: Vec<LocalTree>,
}

impl ThreadState {
    fn tree_for(&mut self, shared: &Arc<Shared>) -> &mut LocalTree {
        let idx = match self.trees.iter().position(|t| t.profiler_id == shared.id) {
            Some(i) => i,
            None => {
                self.trees.push(LocalTree::new(shared));
                self.trees.len() - 1
            }
        };
        &mut self.trees[idx]
    }

    fn flush(&mut self, shared: &Arc<Shared>) {
        if let Some(t) = self.trees.iter_mut().find(|t| t.profiler_id == shared.id) {
            t.flush_if_idle();
        }
    }
}

struct LocalTree {
    profiler_id: u64,
    shared: Arc<Shared>,
    /// `nodes[0]` is the root; children link by index.
    nodes: Vec<LocalNode>,
    stack: Vec<Frame>,
    next_span: u64,
}

struct LocalNode {
    name: &'static str,
    parent: usize,
    total_ns: u64,
    calls: u64,
    children: Vec<(&'static str, usize)>,
}

struct Frame {
    node: usize,
    span: u64,
    start_ns: u64,
}

impl LocalTree {
    fn new(shared: &Arc<Shared>) -> LocalTree {
        LocalTree {
            profiler_id: shared.id,
            shared: shared.clone(),
            nodes: vec![LocalNode {
                name: shared.root,
                parent: 0,
                total_ns: 0,
                calls: 0,
                children: Vec::new(),
            }],
            stack: Vec::new(),
            next_span: 1,
        }
    }

    fn child_of(&mut self, parent: usize, name: &'static str) -> usize {
        if let Some(&(_, idx)) = self.nodes[parent].children.iter().find(|(n, _)| *n == name) {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(LocalNode {
            name,
            parent,
            total_ns: 0,
            calls: 0,
            children: Vec::new(),
        });
        self.nodes[parent].children.push((name, idx));
        idx
    }

    fn path_of(&self, mut node: usize) -> String {
        let mut parts = Vec::new();
        loop {
            parts.push(self.nodes[node].name);
            if node == 0 {
                break;
            }
            node = self.nodes[node].parent;
        }
        parts.reverse();
        parts.join(";")
    }

    /// Merges accumulated totals into the shared master tree and resets
    /// the local tree. Only safe (and only called) with no open spans.
    fn flush_if_idle(&mut self) {
        if !self.stack.is_empty() {
            return;
        }
        if self.nodes.len() == 1 && self.nodes[0].children.is_empty() {
            return;
        }
        let mut master = self
            .shared
            .master
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        merge_into(&self.nodes, 0, &mut master);
        self.nodes.truncate(1);
        self.nodes[0].children.clear();
        self.nodes[0].total_ns = 0;
        self.nodes[0].calls = 0;
    }
}

fn merge_into(nodes: &[LocalNode], idx: usize, dst: &mut MergedNode) {
    dst.total_ns += nodes[idx].total_ns;
    dst.calls += nodes[idx].calls;
    for &(name, child) in &nodes[idx].children {
        merge_into(nodes, child, dst.child(name));
    }
}

fn enter_in(shared: &Arc<Shared>, name: &'static str) -> ProfGuard {
    let span = STATE.with(|s| {
        let mut st = s.borrow_mut();
        let tree = st.tree_for(shared);
        let parent = tree.stack.last().map_or(0, |f| f.node);
        let node = tree.child_of(parent, name);
        tree.nodes[node].calls += 1;
        let span = tree.next_span;
        tree.next_span += 1;
        let start_ns = tree.shared.now();
        tree.stack.push(Frame {
            node,
            span,
            start_ns,
        });
        span
    });
    ProfGuard {
        shared: Some(shared.clone()),
        span,
    }
}

/// Closes span `span`, plus any younger spans still open above it (all
/// charged up to the same instant). Returns `None` if the span was
/// already closed. `want_path` additionally returns the node's
/// semicolon-joined path from the root.
fn exit_in(shared: &Arc<Shared>, span: u64, want_path: bool) -> Option<(u64, Option<String>)> {
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        let tree = st.trees.iter_mut().find(|t| t.profiler_id == shared.id)?;
        let pos = tree.stack.iter().rposition(|f| f.span == span)?;
        let now = tree.shared.now();
        let mut out = None;
        while tree.stack.len() > pos {
            let f = tree.stack.pop().expect("stack len checked");
            let elapsed = now.saturating_sub(f.start_ns);
            tree.nodes[f.node].total_ns += elapsed;
            if f.span == span {
                let path = if want_path {
                    Some(tree.path_of(f.node))
                } else {
                    None
                };
                out = Some((elapsed, path));
            }
        }
        tree.flush_if_idle();
        out
    })
}

/// An open span; closes on drop. Returned by [`span`] and
/// [`Profiler::enter`].
pub struct ProfGuard {
    shared: Option<Arc<Shared>>,
    span: u64,
}

impl ProfGuard {
    /// Closes the span now, returning its elapsed nanoseconds and its
    /// semicolon-joined path from the root — `None` if an enclosing
    /// span already closed it.
    pub fn finish(mut self) -> Option<(u64, String)> {
        let shared = self.shared.take()?;
        match exit_in(&shared, self.span, true) {
            Some((ns, Some(path))) => Some((ns, path)),
            _ => None,
        }
    }
}

impl Drop for ProfGuard {
    fn drop(&mut self) {
        if let Some(shared) = self.shared.take() {
            let _ = exit_in(&shared, self.span, false);
        }
    }
}

/// Opens `name` under the innermost profiler installed on this thread,
/// or returns `None` when none is — a single thread-local `Cell` read,
/// so instrumented kernels are near-zero cost with profiling off.
pub fn span(name: &'static str) -> Option<ProfGuard> {
    if DEPTH.with(Cell::get) == 0 {
        return None;
    }
    let shared = STATE.with(|s| s.borrow().installed.last().map(|p| p.shared.clone()))?;
    Some(enter_in(&shared, name))
}

/// Opens a profiler span under the thread's installed profiler:
/// `let _g = rt::prof_span!("gemm");`. Expands to [`span`]; binds the
/// guard or it closes immediately.
#[macro_export]
macro_rules! prof_span {
    ($name:expr) => {
        $crate::prof::span($name)
    };
}

/// One node of an exported profile tree: total time, self time (total
/// minus the sum of child totals), call count, and name-sorted
/// children.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileNode {
    /// Span name (root nodes are typically `engine`).
    pub name: String,
    /// Nanoseconds between this span's opens and closes, summed.
    pub total_ns: u64,
    /// `total_ns` minus the sum of child totals (never underflows).
    pub self_ns: u64,
    /// Number of times the span was opened.
    pub calls: u64,
    /// Child spans, sorted by name.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// Serializes this node (recursively) as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::object()
            .insert("name", self.name.as_str())
            .insert("total_ns", self.total_ns)
            .insert("self_ns", self.self_ns)
            .insert("calls", self.calls)
            .insert(
                "children",
                Json::Array(self.children.iter().map(ProfileNode::to_json).collect()),
            )
    }

    /// Parses a node serialized by [`to_json`](Self::to_json).
    pub fn from_json(j: &Json) -> Option<ProfileNode> {
        let num = |k: &str| j.get(k).and_then(Json::as_f64).map(|v| v as u64);
        Some(ProfileNode {
            name: j.get("name")?.as_str()?.to_string(),
            total_ns: num("total_ns")?,
            self_ns: num("self_ns")?,
            calls: num("calls")?,
            children: j
                .get("children")?
                .as_array()?
                .iter()
                .map(ProfileNode::from_json)
                .collect::<Option<Vec<_>>>()?,
        })
    }

    /// Collapsed-stack text: one `path;to;node self_ns` line per node
    /// with nonzero self time, in name-sorted depth-first order — the
    /// input format of standard flamegraph tooling.
    pub fn to_collapsed(&self) -> String {
        let mut out = String::new();
        let mut path = Vec::new();
        self.collapse_into(&mut path, &mut out);
        out
    }

    fn collapse_into<'a>(&'a self, path: &mut Vec<&'a str>, out: &mut String) {
        path.push(&self.name);
        if self.self_ns > 0 {
            out.push_str(&path.join(";"));
            out.push(' ');
            out.push_str(&self.self_ns.to_string());
            out.push('\n');
        }
        for c in &self.children {
            c.collapse_into(path, out);
        }
        path.pop();
    }

    /// Renders an indented total/self/calls attribution table. For
    /// human eyes, children sort by total time descending (name breaks
    /// ties), unlike the name-sorted machine exports.
    pub fn render_table(&self) -> String {
        let mut rows = Vec::new();
        self.table_rows(0, &mut rows);
        let name_w = rows
            .iter()
            .map(|r| r.0.len())
            .max()
            .unwrap_or(0)
            .max("span".len());
        let mut out = format!(
            "{:<name_w$}  {:>12}  {:>12}  {:>8}\n",
            "span", "total", "self", "calls"
        );
        for (label, total, self_ns, calls) in rows {
            out.push_str(&format!(
                "{label:<name_w$}  {:>12}  {:>12}  {calls:>8}\n",
                fmt_ns(total),
                fmt_ns(self_ns),
            ));
        }
        out
    }

    fn table_rows(&self, depth: usize, rows: &mut Vec<(String, u64, u64, u64)>) {
        rows.push((
            format!("{}{}", "  ".repeat(depth), self.name),
            self.total_ns,
            self.self_ns,
            self.calls,
        ));
        let mut kids: Vec<&ProfileNode> = self.children.iter().collect();
        kids.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then_with(|| a.name.cmp(&b.name)));
        for c in kids {
            c.table_rows(depth + 1, rows);
        }
    }

    /// Finds a descendant by name (depth-first), including `self`.
    pub fn find(&self, name: &str) -> Option<&ProfileNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// Wraps a root node in the schema-pinned profile document
/// (`{"schema_version":1,"clock":"ticks","root":{...}}`).
pub fn profile_to_json(clock: ClockKind, root: &ProfileNode) -> Json {
    Json::object()
        .insert("schema_version", PROFILE_SCHEMA_VERSION)
        .insert("clock", clock.name())
        .insert("root", root.to_json())
}

/// Parses a profile document produced by [`profile_to_json`], checking
/// the schema version. Returns `(clock, root)`.
pub fn profile_from_json(j: &Json) -> Result<(String, ProfileNode), String> {
    let version = j
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or("missing schema_version")?;
    if version != PROFILE_SCHEMA_VERSION as f64 {
        return Err(format!(
            "unsupported profile schema_version {version} (expected {PROFILE_SCHEMA_VERSION})"
        ));
    }
    let clock = j
        .get("clock")
        .and_then(Json::as_str)
        .ok_or("missing clock")?
        .to_string();
    let root = j
        .get("root")
        .and_then(ProfileNode::from_json)
        .ok_or("missing or malformed root")?;
    Ok((clock, root))
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rand::{Pcg64, RngCore, SeedableRng};

    fn ticks() -> Profiler {
        Profiler::new(ClockKind::Ticks)
    }

    #[test]
    fn nested_spans_attribute_self_and_total() {
        let p = ticks();
        {
            let _i = p.install();
            let outer = span("train").unwrap();
            {
                let _inner = span("gemm");
                // gemm: enter(now=2) .. exit(now=3) => 1 tick
            }
            drop(outer);
        }
        let root = p.report();
        assert_eq!(root.name, "engine");
        let train = &root.children[0];
        assert_eq!(train.name, "train");
        assert_eq!(train.calls, 1);
        let gemm = &train.children[0];
        assert_eq!(gemm.name, "gemm");
        assert_eq!(gemm.calls, 1);
        assert_eq!(gemm.total_ns, TICK_NS);
        assert_eq!(train.total_ns, 3 * TICK_NS);
        assert_eq!(train.self_ns, train.total_ns - gemm.total_ns);
        assert_eq!(root.total_ns, train.total_ns);
        assert_eq!(root.self_ns, 0);
    }

    #[test]
    fn ticks_clock_is_deterministic_across_runs() {
        let run = || {
            let p = ticks();
            let _i = p.install();
            for _ in 0..3 {
                let _e = span("evaluate");
                let _t = span("train");
                for _ in 0..2 {
                    let _g = span("gemm");
                }
            }
            drop(_i);
            profile_to_json(p.clock(), &p.report()).pretty()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn uninstalled_span_is_none_and_free() {
        assert!(span("gemm").is_none());
    }

    #[test]
    fn out_of_order_drop_closes_children_first() {
        let p = ticks();
        let _i = p.install();
        let outer = span("outer").unwrap();
        let inner = span("inner").unwrap();
        // Parent closed before child: the child is force-closed at the
        // same instant, and the child's later drop is a no-op.
        drop(outer);
        drop(inner);
        drop(_i);
        let root = p.report();
        let outer_n = root.find("outer").unwrap();
        let inner_n = outer_n.find("inner").unwrap();
        assert!(inner_n.total_ns <= outer_n.total_ns);
        assert_eq!(outer_n.calls, 1);
        assert_eq!(inner_n.calls, 1);
    }

    #[test]
    fn finish_returns_path_and_elapsed() {
        let p = ticks();
        let _i = p.install();
        let outer = span("evaluate").unwrap();
        let inner = span("train").unwrap();
        let (ns, path) = inner.finish().unwrap();
        assert_eq!(path, "engine;evaluate;train");
        assert_eq!(ns, TICK_NS);
        drop(outer);
    }

    #[test]
    fn finish_after_forced_close_is_none() {
        let p = ticks();
        let _i = p.install();
        let outer = span("outer").unwrap();
        let inner = span("inner").unwrap();
        drop(outer); // force-closes inner
        assert!(inner.finish().is_none());
    }

    #[test]
    fn cross_thread_merge_is_permutation_invariant() {
        // Two fixed workloads, run in both orders (each on its own
        // thread, sequenced so tick interleaving is identical): the
        // name-sorted export must not depend on merge order.
        let workload_a = |p: &Profiler| {
            let _i = p.install();
            let _e = span("evaluate");
            let _t = span("train");
            let _g = span("gemm");
        };
        let workload_b = |p: &Profiler| {
            let _i = p.install();
            let _e = span("evaluate");
            let _h = span("hw_model");
        };
        let run = |order: [u8; 2]| {
            let p = ticks();
            for which in order {
                let p2 = p.clone();
                std::thread::spawn(move || match which {
                    0 => workload_a(&p2),
                    _ => workload_b(&p2),
                })
                .join()
                .unwrap();
            }
            profile_to_json(p.clock(), &p.report()).pretty()
        };
        assert_eq!(run([0, 1]), run([1, 0]));
    }

    fn worker_subtree(scale: u64) -> ProfileNode {
        let gemm = ProfileNode {
            name: "gemm".to_string(),
            total_ns: scale * TICK_NS,
            self_ns: scale * TICK_NS,
            calls: scale,
            children: Vec::new(),
        };
        ProfileNode {
            name: "worker".to_string(),
            total_ns: 3 * scale * TICK_NS,
            self_ns: 2 * scale * TICK_NS,
            calls: 1,
            children: vec![gemm],
        }
    }

    #[test]
    fn attached_subtrees_are_permutation_invariant() {
        // Cross-wire import: the same pair of worker subtrees attached
        // in either order exports identical bytes.
        let run = |order: [u64; 2]| {
            let p = ticks();
            {
                let _i = p.install();
                let _d = span("dispatch");
            }
            for slot in order {
                p.attach_subtree(&format!("worker:{slot}"), worker_subtree(slot));
            }
            profile_to_json(p.clock(), &p.report()).pretty()
        };
        assert_eq!(run([1, 2]), run([2, 1]));
        let text = run([1, 2]);
        assert!(text.contains("worker:1") && text.contains("worker:2"));
    }

    #[test]
    fn attach_subtree_replaces_by_name_and_feeds_root_total() {
        let p = ticks();
        p.attach_subtree("worker:0", worker_subtree(5));
        // Periodic snapshots are cumulative: a later snapshot under the
        // same name replaces the earlier one instead of accumulating.
        p.attach_subtree("worker:0", worker_subtree(2));
        p.attach_subtree("worker:1", worker_subtree(1));
        let root = p.report();
        assert_eq!(root.children.len(), 2);
        let w0 = root.find("worker:0").unwrap();
        assert_eq!(w0.total_ns, 6 * TICK_NS);
        assert_eq!(w0.find("gemm").unwrap().calls, 2);
        assert_eq!(root.total_ns, 6 * TICK_NS + 3 * TICK_NS);
        assert_eq!(root.self_ns, 0);
    }

    /// Property: over random span programs, child totals never exceed
    /// the parent's total and every node's self time is exactly total
    /// minus the sum of child totals.
    #[test]
    fn prop_tree_invariants_over_random_programs() {
        let seed = std::env::var("RT_CHECK_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0xecad);
        let mut rng = Pcg64::seed_from_u64(seed);
        const NAMES: [&str; 5] = ["a", "b", "c", "d", "e"];
        for _case in 0..200 {
            let p = ticks();
            {
                let _i = p.install();
                let mut open: Vec<ProfGuard> = Vec::new();
                for _step in 0..40 {
                    let r = rng.next_u64();
                    if open.is_empty() || r % 3 != 0 {
                        let name = NAMES[(r / 3) as usize % NAMES.len()];
                        if let Some(g) = span(name) {
                            open.push(g);
                        }
                    } else {
                        // Drop a random open guard — possibly out of
                        // order relative to the stack.
                        let idx = (r / 3) as usize % open.len();
                        drop(open.swap_remove(idx));
                    }
                }
                // Guards drop in arbitrary (swap_remove-scrambled)
                // order here, exercising forced closes again.
            }
            check_invariants(&p.report());
        }
    }

    fn check_invariants(node: &ProfileNode) {
        let child_sum: u64 = node.children.iter().map(|c| c.total_ns).sum();
        assert!(
            child_sum <= node.total_ns,
            "children {child_sum} exceed parent {} at {}",
            node.total_ns,
            node.name
        );
        assert_eq!(
            node.self_ns,
            node.total_ns - child_sum,
            "self time mismatch at {}",
            node.name
        );
        let mut names: Vec<&str> = node.children.iter().map(|c| c.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "children not name-sorted at {}", node.name);
        names.dedup();
        assert_eq!(names.len(), node.children.len(), "duplicate child name");
        for c in &node.children {
            check_invariants(c);
        }
    }

    #[test]
    fn json_round_trip_and_schema() {
        let p = ticks();
        {
            let _i = p.install();
            let _e = span("evaluate");
            let _t = span("train");
        }
        let root = p.report();
        let doc = profile_to_json(p.clock(), &root);
        let text = doc.pretty();
        let parsed = Json::parse(&text).unwrap();
        let (clock, root2) = profile_from_json(&parsed).unwrap();
        assert_eq!(clock, "ticks");
        assert_eq!(root, root2);
        assert!(profile_from_json(&Json::object().insert("schema_version", 99)).is_err());
    }

    #[test]
    fn collapsed_lines_are_path_and_self_ns() {
        let p = ticks();
        {
            let _i = p.install();
            let outer = span("train").unwrap();
            {
                let _g = span("gemm");
            }
            drop(outer);
        }
        let collapsed = p.report().to_collapsed();
        for line in collapsed.lines() {
            let (path, ns) = line.rsplit_once(' ').unwrap();
            assert!(path.starts_with("engine;"));
            assert!(ns.parse::<u64>().unwrap() > 0);
        }
        assert!(collapsed.contains("engine;train;gemm "));
    }

    #[test]
    fn render_table_shows_hierarchy() {
        let p = ticks();
        {
            let _i = p.install();
            let outer = span("train").unwrap();
            {
                let _g = span("gemm");
            }
            drop(outer);
        }
        let table = p.report().render_table();
        assert!(table.starts_with("span"));
        assert!(table.contains("engine"));
        assert!(table.contains("  train"));
        assert!(table.contains("    gemm"));
    }

    #[test]
    fn obs_enter_without_install_still_records() {
        // Obs spans enter a profiler directly, without it being
        // installed on the thread.
        let p = ticks();
        let g = p.enter("train");
        let (ns, path) = g.finish().unwrap();
        assert_eq!(path, "engine;train");
        assert_eq!(ns, TICK_NS);
        assert_eq!(p.report().find("train").unwrap().calls, 1);
    }
}
