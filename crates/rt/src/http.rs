//! A minimal HTTP/1.1 server and Prometheus text exposition, for the
//! search observatory's `/metrics`, `/status`, and `/healthz` endpoints.
//!
//! Like the rest of `rt` this is dependency-free: the server is a
//! [`std::net::TcpListener`] accept loop on a pair of supervised worker
//! slots ([`crate::supervise::Supervisor`]), and the exposition writer/
//! parser speak the Prometheus text format directly. The surface is
//! deliberately tiny — `GET`-only, `Connection: close`, no keep-alive,
//! no TLS — because its one job is letting `curl`/`watch`/a scraper
//! read a live search's state.
//!
//! ```no_run
//! use rt::http::{Response, Server};
//!
//! let handle = Server::new()
//!     .route("/healthz", || Response::ok("text/plain", "ok\n".into()))
//!     .bind("127.0.0.1:0")
//!     .unwrap();
//! println!("listening on http://{}", handle.addr());
//! handle.stop();
//! ```
//!
//! Handlers only *read* shared state (a metrics snapshot, a status
//! cell); they never block on or mutate the computation being observed,
//! which is what lets a `--serve` run produce a byte-identical trace to
//! an unserved one.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::obs::MetricValue;
use crate::supervise::Supervisor;

/// Number of supervised accept-loop threads per server. Two keeps one
/// slow client from blocking the next scrape without growing into a
/// real thread pool.
const ACCEPT_SLOTS: usize = 2;
/// Largest request head we will buffer before answering 431.
const MAX_HEAD: usize = 8 * 1024;
/// Poll interval of the non-blocking accept loop.
const ACCEPT_POLL: Duration = Duration::from_millis(10);
/// Per-read socket deadline, so a stalled client cannot pin an accept
/// slot for long.
const READ_TIMEOUT: Duration = Duration::from_secs(2);
/// Per-write socket deadline: a client that stops draining its receive
/// buffer errors out instead of blocking the response write forever.
const WRITE_TIMEOUT: Duration = Duration::from_secs(2);
/// Total budget for receiving one request head. The per-read timeout
/// alone is not a slowloris guard — a client dribbling one byte every
/// 1.9 s would extend it indefinitely; this caps the whole head.
const HEAD_DEADLINE: Duration = Duration::from_secs(5);

/// Per-connection socket deadlines, bundled so tests can exercise the
/// slowloris guard with short values.
#[derive(Debug, Clone, Copy)]
struct ConnLimits {
    read_timeout: Duration,
    write_timeout: Duration,
    head_deadline: Duration,
}

const DEFAULT_LIMITS: ConnLimits = ConnLimits {
    read_timeout: READ_TIMEOUT,
    write_timeout: WRITE_TIMEOUT,
    head_deadline: HEAD_DEADLINE,
};

/// An HTTP response a route handler produces.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code (200, 404, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A 200 response with the given content type and body.
    pub fn ok(content_type: &'static str, body: String) -> Self {
        Self {
            status: 200,
            content_type,
            body,
        }
    }

    /// A 404 response.
    pub fn not_found() -> Self {
        Self {
            status: 404,
            content_type: "text/plain",
            body: "not found\n".to_string(),
        }
    }

    fn status_reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            431 => "Request Header Fields Too Large",
            _ => "Response",
        }
    }

    fn write_to(&self, stream: &mut TcpStream) {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.status_reason(),
            self.content_type,
            self.body.len()
        );
        // A client hanging up mid-write is its problem, not ours.
        let _ = stream.write_all(head.as_bytes());
        let _ = stream.write_all(self.body.as_bytes());
        let _ = stream.flush();
    }
}

type Handler = Arc<dyn Fn() -> Response + Send + Sync>;

/// A route table under construction; [`Server::bind`] turns it into a
/// live [`ServerHandle`].
#[derive(Default, Clone)]
pub struct Server {
    routes: Vec<(String, Handler)>,
}

impl Server {
    /// An empty route table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `handler` for exact-path GETs of `path` (the query
    /// string, if any, is ignored for matching).
    pub fn route(
        mut self,
        path: &str,
        handler: impl Fn() -> Response + Send + Sync + 'static,
    ) -> Self {
        self.routes.push((path.to_string(), Arc::new(handler)));
        self
    }

    /// Binds to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving on background threads. The returned handle stops
    /// the server when dropped.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the address cannot be bound.
    pub fn bind(self, addr: &str) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // Non-blocking accept so the loop can observe the stop flag.
        listener.set_nonblocking(true)?;
        let listener = Arc::new(listener);
        let stop = Arc::new(AtomicBool::new(false));
        let routes = Arc::new(self.routes);

        let mut supervisor = Supervisor::new();
        for _ in 0..ACCEPT_SLOTS {
            let listener = Arc::clone(&listener);
            let stop = Arc::clone(&stop);
            let routes = Arc::clone(&routes);
            supervisor.spawn(move |ctx| {
                while ctx.is_current() && !stop.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            serve_connection(stream, &routes, DEFAULT_LIMITS)
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            std::thread::sleep(ACCEPT_POLL);
                        }
                        // Transient accept errors (ECONNABORTED etc.):
                        // back off briefly and keep serving.
                        Err(_) => std::thread::sleep(ACCEPT_POLL),
                    }
                }
            });
        }

        Ok(ServerHandle {
            addr: local,
            stop,
            _supervisor: supervisor,
        })
    }
}

/// A running server. Dropping the handle (or calling
/// [`ServerHandle::stop`]) asks the accept loops to wind down; they
/// exit within one poll interval.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    _supervisor: Supervisor,
}

impl ServerHandle {
    /// The actual bound address (useful after binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown of the accept loops. Idempotent.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Reads one request head, dispatches it against the route table, and
/// writes one response. Any protocol violation gets a plain 4xx; a
/// client still dribbling its head at the total deadline gets a 408.
fn serve_connection(mut stream: TcpStream, routes: &[(String, Handler)], limits: ConnLimits) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(limits.write_timeout));
    let deadline = std::time::Instant::now() + limits.head_deadline;

    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    let complete = loop {
        // Each read waits no longer than the head budget has left, so
        // byte-at-a-time dribbling cannot extend the deadline.
        let remaining = deadline.saturating_duration_since(std::time::Instant::now());
        if remaining.is_zero() {
            Response {
                status: 408,
                content_type: "text/plain",
                body: "request head too slow\n".to_string(),
            }
            .write_to(&mut stream);
            return;
        }
        let _ = stream.set_read_timeout(Some(limits.read_timeout.min(remaining)));
        match stream.read(&mut buf) {
            Ok(0) => break false,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") {
                    break true;
                }
                if head.len() > MAX_HEAD {
                    Response {
                        status: 431,
                        content_type: "text/plain",
                        body: "request head too large\n".to_string(),
                    }
                    .write_to(&mut stream);
                    return;
                }
            }
            Err(ref e)
                if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
            {
                // Per-read timeout: loop back; the deadline check above
                // decides whether the connection still has budget.
                continue;
            }
            Err(_) => break false,
        }
    };
    if !complete {
        return; // client hung up or timed out before finishing the head
    }

    let head = String::from_utf8_lossy(&head);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1.") => (m, t),
        _ => {
            Response {
                status: 400,
                content_type: "text/plain",
                body: "malformed request line\n".to_string(),
            }
            .write_to(&mut stream);
            return;
        }
    };
    if method != "GET" {
        Response {
            status: 405,
            content_type: "text/plain",
            body: "only GET is supported\n".to_string(),
        }
        .write_to(&mut stream);
        return;
    }
    let path = target.split('?').next().unwrap_or(target);
    let response = routes
        .iter()
        .find(|(p, _)| p == path)
        .map(|(_, h)| h())
        .unwrap_or_else(Response::not_found);
    response.write_to(&mut stream);
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

/// Formats an f64 the way the Prometheus text format spells special
/// values (`+Inf`, `-Inf`, `NaN`).
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// A metric name sanitized to the Prometheus grammar
/// `[a-zA-Z_:][a-zA-Z0-9_:]*` — the registry's dotted names
/// (`engine.cache_hits`) become underscored (`engine_cache_hits`).
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Splits a registry key into its metric name and (possibly empty)
/// label block. Labeled keys are built by `rt::obs::labeled_key` as
/// `name{k="v",...}` with values already escaped, so the block after
/// the first `{` passes through to the exposition verbatim.
fn split_key(key: &str) -> (&str, &str) {
    match key.find('{') {
        Some(at) => (&key[..at], &key[at..]),
        None => (key, ""),
    }
}

/// Appends one more `label="value"` pair to a rendered label block
/// (`""` or `{...}`), used to merge `quantile` into a summary sample's
/// existing labels.
fn with_label(block: &str, label: &str, value: &str) -> String {
    match block.strip_suffix('}') {
        Some(open) if open.len() > 1 => format!("{open},{label}=\"{value}\"}}"),
        _ => format!("{{{label}=\"{value}\"}}"),
    }
}

/// Renders a metrics snapshot (as returned by `Obs::snapshot`) in the
/// Prometheus text exposition format. Counters and gauges become one
/// sample each; histograms become a summary: `{quantile=...}` samples
/// plus `_sum` and `_count`. Labeled registry keys
/// (`name{worker="a:1"}`) render with their label block intact —
/// label values were escaped at key-build time
/// (`rt::obs::labeled_key`), so quotes, backslashes, and newlines in
/// values survive the text format. A `# TYPE` line is emitted once per
/// family: snapshots are sorted, so all series of one family are
/// adjacent.
pub fn prometheus_text(entries: &[(String, MetricValue)]) -> String {
    let mut out = String::new();
    let mut last_family: Option<String> = None;
    for (key, value) in entries {
        let (raw_name, labels) = split_key(key);
        let n = prom_name(raw_name);
        if last_family.as_deref() != Some(n.as_str()) {
            let kind = match value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "summary",
            };
            out.push_str(&format!("# TYPE {n} {kind}\n"));
            last_family = Some(n.clone());
        }
        match value {
            MetricValue::Counter(c) => {
                out.push_str(&format!("{n}{labels} {c}\n"));
            }
            MetricValue::Gauge(g) => {
                out.push_str(&format!("{n}{labels} {}\n", prom_f64(*g)));
            }
            MetricValue::Histogram(h) => {
                for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
                    out.push_str(&format!(
                        "{n}{} {}\n",
                        with_label(labels, "quantile", q),
                        prom_f64(v)
                    ));
                }
                out.push_str(&format!("{n}_sum{labels} {}\n", prom_f64(h.sum)));
                out.push_str(&format!("{n}_count{labels} {}\n", h.count));
            }
        }
    }
    out
}

/// One parsed exposition sample: metric name, labels, value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name.
    pub name: String,
    /// `(label, value)` pairs in appearance order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

fn is_name_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':'
}

fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit()
}

fn parse_value(text: &str) -> Option<f64> {
    match text {
        "+Inf" | "Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        other => other.parse().ok(),
    }
}

/// Parses and validates Prometheus text exposition, the checker side of
/// [`prometheus_text`]. Comment lines (`# HELP` / `# TYPE` / plain
/// comments) are skipped; every other non-empty line must be a valid
/// sample.
///
/// # Errors
///
/// Returns `"line N: reason"` for the first malformed line.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(parse_sample(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(samples)
}

/// Parses a label block body (after the opening `{`) handling the
/// text-format escapes in quoted values — `\\`, `\"`, and `\n` — so a
/// value may contain `}`, `,`, or `"` without breaking the line apart.
/// Returns the decoded pairs and the remainder after the closing `}`.
fn parse_label_block<'a>(
    body: &'a str,
    line: &str,
) -> Result<(Vec<(String, String)>, &'a str), String> {
    let mut labels = Vec::new();
    let mut rest = body.trim_start();
    loop {
        if let Some(tail) = rest.strip_prefix('}') {
            return Ok((labels, tail));
        }
        let key_end = rest
            .char_indices()
            .find(|&(_, c)| !is_name_char(c))
            .map_or(rest.len(), |(i, _)| i);
        let key = &rest[..key_end];
        if key.is_empty() || !key.chars().next().is_some_and(is_name_start) {
            return Err(format!("bad label name in {line:?}"));
        }
        rest = rest[key_end..]
            .strip_prefix('=')
            .and_then(|r| r.strip_prefix('"'))
            .ok_or_else(|| format!("unquoted label value in {line:?}"))?;
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let after_quote = loop {
            let (i, c) = chars
                .next()
                .ok_or_else(|| format!("unterminated label value in {line:?}"))?;
            match c {
                '"' => break i + 1,
                '\\' => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    other => {
                        return Err(format!(
                            "bad escape \\{} in {line:?}",
                            other.map_or(String::new(), |(_, c)| c.to_string())
                        ))
                    }
                },
                other => value.push(other),
            }
        };
        labels.push((key.to_string(), value));
        rest = rest[after_quote..].trim_start();
        if let Some(tail) = rest.strip_prefix(',') {
            rest = tail.trim_start();
        } else if !rest.starts_with('}') {
            return Err(format!("expected ',' or '}}' in label set of {line:?}"));
        }
    }
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let mut chars = line.char_indices().peekable();
    match chars.peek() {
        Some(&(_, c)) if is_name_start(c) => {}
        _ => return Err(format!("bad metric name in {line:?}")),
    }
    let mut name_end = line.len();
    for (i, c) in line.char_indices() {
        if !is_name_char(c) {
            name_end = i;
            break;
        }
    }
    let name = line[..name_end].to_string();
    let mut rest = &line[name_end..];

    let mut labels = Vec::new();
    if let Some(stripped) = rest.strip_prefix('{') {
        let (parsed, tail) = parse_label_block(stripped, line)?;
        labels = parsed;
        rest = tail;
    }

    let mut fields = rest.split_whitespace();
    let value_text = fields
        .next()
        .ok_or_else(|| format!("missing value in {line:?}"))?;
    let value =
        parse_value(value_text).ok_or_else(|| format!("bad value {value_text:?}"))?;
    // An optional trailing timestamp (integer milliseconds) is allowed.
    if let Some(ts) = fields.next() {
        ts.parse::<i64>()
            .map_err(|_| format!("bad timestamp {ts:?}"))?;
    }
    if fields.next().is_some() {
        return Err(format!("trailing garbage in {line:?}"));
    }
    Ok(Sample { name, labels, value })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::HistogramSummary;

    fn get(addr: SocketAddr, target: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {target} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        let status: u16 = text
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status code");
        let body = text
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn serves_routes_and_404s() {
        let handle = Server::new()
            .route("/healthz", || Response::ok("text/plain", "ok\n".into()))
            .route("/echo", || Response::ok("application/json", "{\"a\":1}".into()))
            .bind("127.0.0.1:0")
            .expect("bind");
        let addr = handle.addr();

        assert_eq!(get(addr, "/healthz"), (200, "ok\n".to_string()));
        assert_eq!(get(addr, "/echo").0, 200);
        assert_eq!(get(addr, "/healthz?verbose=1").0, 200, "query ignored");
        assert_eq!(get(addr, "/nope").0, 404);
        handle.stop();
    }

    #[test]
    fn rejects_non_get_and_garbage() {
        let handle = Server::new()
            .route("/x", || Response::ok("text/plain", "x".into()))
            .bind("127.0.0.1:0")
            .expect("bind");
        let addr = handle.addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "POST /x HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 405"), "got {text:?}");

        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "complete nonsense\r\n\r\n").unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 400"), "got {text:?}");
    }

    #[test]
    fn stop_ends_the_accept_loop() {
        let handle = Server::new()
            .route("/x", || Response::ok("text/plain", "x".into()))
            .bind("127.0.0.1:0")
            .expect("bind");
        let addr = handle.addr();
        assert_eq!(get(addr, "/x").0, 200);
        handle.stop();
        // Give the poll loops a moment to observe the flag; afterwards a
        // connection may still be accepted by the OS backlog but never
        // answered. We only assert the handle API is idempotent.
        handle.stop();
    }

    #[test]
    fn slowloris_head_gets_408_at_the_deadline() {
        // Drive serve_connection directly with a tight budget so the
        // test stays fast; the server path uses the same code with
        // DEFAULT_LIMITS.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let limits = ConnLimits {
            read_timeout: Duration::from_millis(50),
            write_timeout: Duration::from_millis(200),
            head_deadline: Duration::from_millis(200),
        };
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let routes: Vec<(String, Handler)> = vec![(
                "/x".to_string(),
                Arc::new(|| Response::ok("text/plain", "x".into())),
            )];
            serve_connection(stream, &routes, limits);
        });

        let start = std::time::Instant::now();
        let mut stream = TcpStream::connect(addr).unwrap();
        // Dribble an incomplete head slowly, never finishing it.
        for chunk in ["GET ", "/x H", "TTP/1."] {
            let _ = stream.write_all(chunk.as_bytes());
            std::thread::sleep(Duration::from_millis(80));
        }
        let mut text = String::new();
        let _ = stream.read_to_string(&mut text);
        server.join().unwrap();
        assert!(
            text.starts_with("HTTP/1.1 408"),
            "expected 408 for a dribbled head, got {text:?}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "deadline must cut the connection off promptly"
        );
    }

    #[test]
    fn partial_head_timeout_closes_within_budget() {
        // A client that connects and sends nothing is dropped once the
        // head budget lapses, freeing the accept slot.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let limits = ConnLimits {
            read_timeout: Duration::from_millis(40),
            write_timeout: Duration::from_millis(200),
            head_deadline: Duration::from_millis(120),
        };
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            serve_connection(stream, &[], limits);
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut text = String::new();
        let _ = stream.read_to_string(&mut text);
        server.join().unwrap();
        assert!(text.starts_with("HTTP/1.1 408"), "got {text:?}");
    }

    #[test]
    fn exposition_round_trips() {
        let entries = vec![
            ("engine.models_evaluated".to_string(), MetricValue::Counter(42)),
            ("search.hypervolume".to_string(), MetricValue::Gauge(0.125)),
            (
                "span.train_s".to_string(),
                MetricValue::Histogram(HistogramSummary {
                    count: 3,
                    sum: 0.5,
                    p50: 0.1,
                    p90: 0.2,
                    p99: 0.3,
                }),
            ),
        ];
        let text = prometheus_text(&entries);
        assert!(text.contains("# TYPE engine_models_evaluated counter"));
        assert!(text.contains("engine_models_evaluated 42"));
        assert!(text.contains("search_hypervolume 0.125"));
        assert!(text.contains("span_train_s{quantile=\"0.99\"}"));
        assert!(text.contains("span_train_s_count 3"));

        let samples = parse_exposition(&text).expect("parses");
        assert_eq!(samples.len(), 2 + 5);
        let hv = samples
            .iter()
            .find(|s| s.name == "search_hypervolume")
            .unwrap();
        assert_eq!(hv.value, 0.125);
        let q99 = samples
            .iter()
            .find(|s| s.labels == vec![("quantile".to_string(), "0.99".to_string())])
            .unwrap();
        assert_eq!(q99.name, "span_train_s");
        assert_eq!(q99.value, 0.3);
    }

    #[test]
    fn labeled_families_render_and_round_trip() {
        let weird = "pa\\th \"q\"\nend"; // backslash, quotes, newline
        let entries = vec![
            (
                crate::obs::labeled_key("cluster.worker_jobs", &[("worker", "127.0.0.1:9471")]),
                MetricValue::Counter(7),
            ),
            (
                crate::obs::labeled_key("cluster.worker_jobs", &[("worker", weird)]),
                MetricValue::Counter(9),
            ),
            (
                crate::obs::labeled_key(
                    "cluster.worker_eval_s",
                    &[("worker", "127.0.0.1:9471")],
                ),
                MetricValue::Histogram(HistogramSummary {
                    count: 2,
                    sum: 0.3,
                    p50: 0.1,
                    p90: 0.2,
                    p99: 0.2,
                }),
            ),
        ];
        let text = prometheus_text(&entries);
        // One TYPE line per family even with several labeled series.
        assert_eq!(text.matches("# TYPE cluster_worker_jobs counter").count(), 1);
        assert!(text.contains("cluster_worker_jobs{worker=\"127.0.0.1:9471\"} 7"));
        // The summary merges quantile into the existing label block.
        assert!(text
            .contains("cluster_worker_eval_s{worker=\"127.0.0.1:9471\",quantile=\"0.5\"}"));
        assert!(text.contains("cluster_worker_eval_s_sum{worker=\"127.0.0.1:9471\"}"));

        let samples = parse_exposition(&text).expect("parses");
        let odd = samples
            .iter()
            .find(|s| s.name == "cluster_worker_jobs" && s.value == 9.0)
            .expect("escaped series survives");
        assert_eq!(odd.labels, vec![("worker".to_string(), weird.to_string())]);
    }

    #[test]
    fn label_parser_handles_escapes_and_rejects_bad_ones() {
        let samples =
            parse_exposition("m{a=\"x\\\\y\",b=\"q\\\"z\",c=\"l\\nr\"} 1\n").expect("parses");
        assert_eq!(
            samples[0].labels,
            vec![
                ("a".to_string(), "x\\y".to_string()),
                ("b".to_string(), "q\"z".to_string()),
                ("c".to_string(), "l\nr".to_string()),
            ]
        );
        // A `}` inside a quoted value must not terminate the block.
        let samples = parse_exposition("m{a=\"v}w\"} 2\n").expect("parses");
        assert_eq!(samples[0].labels[0].1, "v}w");
        assert!(parse_exposition("m{a=\"v\\qx\"} 1\n").is_err(), "unknown escape");
        assert!(parse_exposition("m{a=\"open 1\n").is_err(), "unterminated value");
        assert!(parse_exposition("m{a=\"v\"b=\"w\"} 1\n").is_err(), "missing comma");
        assert!(parse_exposition("m{} 3\n").is_ok(), "empty label set");
    }

    #[test]
    fn exposition_parser_rejects_malformed_lines() {
        assert!(parse_exposition("ok 1\n").is_ok());
        assert!(parse_exposition("0bad 1\n").is_err());
        assert!(parse_exposition("name\n").is_err());
        assert!(parse_exposition("name notanumber\n").is_err());
        assert!(parse_exposition("name{k=\"v\" 1\n").is_err());
        assert!(parse_exposition("name{k=v} 1\n").is_err());
        assert!(parse_exposition("name 1 2 3\n").is_err());
        assert!(parse_exposition("name +Inf\nname2 NaN\n# comment\n").is_ok());
        assert!(parse_exposition("name 1 1700000000000\n").is_ok(), "timestamp ok");
    }

    #[test]
    fn prom_name_sanitizes() {
        assert_eq!(prom_name("engine.cache_hits"), "engine_cache_hits");
        assert_eq!(prom_name("span.train_s"), "span_train_s");
        assert_eq!(prom_name("9lives"), "_9lives");
        assert_eq!(prom_name("a:b"), "a:b");
    }
}
