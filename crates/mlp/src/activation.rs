//! Hidden-layer activation functions.
//!
//! The activation is one of the four NNA genes the evolutionary engine
//! mutates (§III-A: "number of layers, layer size, activation function,
//! and bias"). The output layer always applies softmax, handled by the
//! trainer, so `Activation` covers hidden layers only.


/// A hidden-layer activation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activation {
    /// Rectified linear unit, `max(0, x)`.
    Relu,
    /// Logistic sigmoid, `1 / (1 + e^-x)`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Identity (linear layer).
    Identity,
}

impl Activation {
    /// All variants, for mutation sampling.
    pub const ALL: [Activation; 4] = [
        Activation::Relu,
        Activation::Sigmoid,
        Activation::Tanh,
        Activation::Identity,
    ];

    /// Applies the activation to a single value.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x,
        }
    }

    /// Derivative expressed in terms of the *activated* output `y`
    /// (`y = apply(x)`), which is what backpropagation has in hand.
    ///
    /// ReLU's derivative at 0 is taken as 0 (the subgradient convention
    /// sklearn and most frameworks use).
    #[inline]
    pub fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
            Activation::Identity => 1.0,
        }
    }

    /// Short lowercase name (`"relu"`, `"sigmoid"`, ...), used in genome
    /// hashing and report output.
    pub fn name(self) -> &'static str {
        match self {
            Activation::Relu => "relu",
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
            Activation::Identity => "identity",
        }
    }

    /// Parses a name produced by [`Activation::name`].
    pub fn from_name(s: &str) -> Option<Activation> {
        Activation::ALL.iter().copied().find(|a| a.name() == s)
    }
}

impl std::fmt::Display for Activation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.5), 2.5);
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        let s = Activation::Sigmoid;
        assert!((s.apply(0.0) - 0.5).abs() < 1e-6);
        assert!(s.apply(100.0) <= 1.0);
        assert!(s.apply(-100.0) >= 0.0);
    }

    #[test]
    fn tanh_is_odd() {
        let t = Activation::Tanh;
        assert!((t.apply(1.3) + t.apply(-1.3)).abs() < 1e-6);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-3f32;
        for act in Activation::ALL {
            for &x in &[-2.0f32, -0.5, 0.31, 1.7] {
                let y = act.apply(x);
                let numeric = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let analytic = act.derivative_from_output(y);
                assert!(
                    (numeric - analytic).abs() < 1e-2,
                    "{act} at {x}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn relu_derivative_at_zero_is_zero() {
        assert_eq!(Activation::Relu.derivative_from_output(0.0), 0.0);
    }

    #[test]
    fn names_round_trip() {
        for a in Activation::ALL {
            assert_eq!(Activation::from_name(a.name()), Some(a));
        }
        assert_eq!(Activation::from_name("swish"), None);
    }
}
