//! # ecad-mlp
//!
//! Multilayer perceptron training and inference — the "NNA" half of the
//! ECAD co-design search.
//!
//! Each candidate the evolutionary engine proposes is an
//! [`MlpTopology`]: a stack of dense layers with per-layer neuron count,
//! activation function and optional bias (exactly the traits the paper
//! mutates, §III-A). This crate turns a topology into a trainable
//! [`Mlp`], trains it with minibatch SGD/momentum/Adam against softmax
//! cross-entropy, and reports test accuracy — the raw measurement the
//! engine's *simulation worker* returns to the master.
//!
//! The same topology also exposes its GEMM decomposition
//! ([`MlpTopology::gemm_shapes`]), which is what the hardware models in
//! `ecad-hw` consume: "at the heart of MLP is a general matrix
//! multiplication" (§I).
//!
//! ## Example
//!
//! ```
//! use ecad_dataset::synth::SyntheticSpec;
//! use ecad_mlp::{Activation, MlpTopology, TrainConfig, Trainer};
//!
//! let ds = SyntheticSpec::new("demo", 200, 8, 2).with_seed(1).generate();
//! let topo = MlpTopology::builder(8, 2)
//!     .hidden(16, Activation::Relu, true)
//!     .build();
//! let mut rng = <rt::rand::rngs::StdRng as rt::rand::SeedableRng>::seed_from_u64(0);
//! let report = Trainer::new(TrainConfig::fast()).fit(&topo, &ds, &ds, &mut rng)?;
//! assert!(report.test_accuracy > 0.5);
//! # Ok::<(), ecad_mlp::TrainError>(())
//! ```

#![warn(missing_docs)]

mod activation;
mod layer;
mod network;
mod optimizer;
mod topology;
mod trainer;

pub use activation::Activation;
pub use layer::DenseLayer;
pub use network::Mlp;
pub use optimizer::{Adam, OptimizerKind, Sgd};
pub use topology::{LayerSpec, MlpTopology, TopologyBuilder};
pub use trainer::{TrainConfig, TrainError, TrainReport, Trainer};
