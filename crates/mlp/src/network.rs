//! The full MLP: a stack of dense layers plus a softmax output head.

use ecad_tensor::{ops, Matrix};
use rt::rand::Rng;

use crate::layer::LayerGrads;
use crate::{Activation, DenseLayer, MlpTopology};

/// A trainable multilayer perceptron instantiated from an
/// [`MlpTopology`].
///
/// The final layer's logits are passed through a row-wise softmax by
/// [`Mlp::predict_proba`]; training couples that softmax with
/// cross-entropy so the output-layer gradient is simply
/// `probs - one_hot(targets)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    topology: MlpTopology,
    layers: Vec<DenseLayer>,
}

impl Mlp {
    /// Instantiates a topology with seeded random weights.
    pub fn from_topology<R: Rng + ?Sized>(topology: &MlpTopology, rng: &mut R) -> Self {
        let mut layers = Vec::with_capacity(topology.depth() + 1);
        let mut fan_in = topology.input();
        for spec in topology.hidden() {
            layers.push(DenseLayer::new(
                fan_in,
                spec.neurons,
                spec.activation,
                spec.bias,
                rng,
            ));
            fan_in = spec.neurons;
        }
        // Implicit output head: identity activation (softmax applied by
        // the loss / predict_proba), always biased.
        layers.push(DenseLayer::new(
            fan_in,
            topology.n_classes(),
            Activation::Identity,
            true,
            rng,
        ));
        Self {
            topology: topology.clone(),
            layers,
        }
    }

    /// The topology this network was instantiated from.
    pub fn topology(&self) -> &MlpTopology {
        &self.topology
    }

    /// The layers, hidden layers first, output head last.
    pub fn layers(&self) -> &[DenseLayer] {
        &self.layers
    }

    /// Forward pass returning raw logits (no softmax).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != topology.input()`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let _prof = rt::prof_span!("forward");
        let mut h = x.clone();
        for l in &self.layers {
            h = l.forward(&h);
        }
        h
    }

    /// Forward pass retaining every intermediate activation (input
    /// included), for backpropagation. `result[0]` is `x`,
    /// `result.last()` is the logits.
    pub fn forward_trace(&self, x: &Matrix) -> Vec<Matrix> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.clone());
        for l in &self.layers {
            let next = l.forward(acts.last().expect("nonempty"));
            acts.push(next);
        }
        acts
    }

    /// Class probabilities (softmax over logits).
    pub fn predict_proba(&self, x: &Matrix) -> Matrix {
        ops::softmax_rows(&self.forward(x))
    }

    /// Hard class predictions (argmax of probabilities).
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        self.forward(x).argmax_rows()
    }

    /// Classification accuracy against integer labels.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != x.rows()`.
    pub fn accuracy(&self, x: &Matrix, labels: &[usize]) -> f32 {
        ops::accuracy(&self.forward(x), labels)
    }

    /// Backpropagates softmax-cross-entropy loss for a minibatch.
    ///
    /// Returns per-layer gradients (aligned with [`Mlp::layers`]) and the
    /// batch's mean loss. Gradients are already divided by the batch size.
    pub fn backprop(&self, x: &Matrix, targets_one_hot: &Matrix) -> (Vec<LayerGrads>, f32) {
        let forward_prof = rt::prof_span!("forward");
        let acts = self.forward_trace(x);
        drop(forward_prof);
        let _prof = rt::prof_span!("backward");
        let logits = acts.last().expect("trace nonempty");
        let probs = ops::softmax_rows(logits);
        let loss = ops::cross_entropy(&probs, targets_one_hot);
        let batch = x.rows().max(1) as f32;

        // Softmax+CE gradient w.r.t. logits: (p - t) / batch.
        let mut delta = probs
            .sub(targets_one_hot)
            .expect("target shape must match logits");
        delta.scale_inplace(1.0 / batch);

        let mut grads: Vec<LayerGrads> = Vec::with_capacity(self.layers.len());
        // The output head has Identity activation, so its backward's
        // activation-derivative factor is 1 and `delta` passes through
        // unchanged; hidden layers apply their own derivative.
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let input = &acts[i];
            let output = &acts[i + 1];
            let (d_in, g) = layer.backward(input, output, &delta);
            grads.push(g);
            delta = d_in;
        }
        grads.reverse();
        (grads, loss)
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.topology.param_count()
    }

    /// Whether all weights and biases are finite.
    pub fn is_finite(&self) -> bool {
        self.layers
            .iter()
            .all(|l| l.weights().all_finite() && l.bias().iter().all(|b| b.is_finite()))
    }

    /// Mutably borrows the layers (used by the optimizer to apply steps).
    pub(crate) fn layers_mut(&mut self) -> &mut [DenseLayer] {
        &mut self.layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt::rand::rngs::StdRng;
    use rt::rand::SeedableRng;

    fn net() -> Mlp {
        let topo = MlpTopology::builder(4, 3)
            .hidden(6, Activation::Relu, true)
            .hidden(5, Activation::Tanh, false)
            .build();
        Mlp::from_topology(&topo, &mut StdRng::seed_from_u64(0))
    }

    #[test]
    fn layer_count_includes_output_head() {
        assert_eq!(net().layers().len(), 3);
    }

    #[test]
    fn forward_shape_is_batch_by_classes() {
        let n = net();
        let x = Matrix::zeros(7, 4);
        assert_eq!(n.forward(&x).shape(), (7, 3));
    }

    #[test]
    fn forward_trace_lengths() {
        let n = net();
        let x = Matrix::zeros(2, 4);
        let trace = n.forward_trace(&x);
        assert_eq!(trace.len(), 4);
        assert_eq!(trace[0], x);
        assert_eq!(trace[3].shape(), (2, 3));
    }

    #[test]
    fn predict_proba_rows_sum_to_one() {
        let n = net();
        let mut rng = StdRng::seed_from_u64(1);
        let x = ecad_tensor::init::uniform(&mut rng, 5, 4, 2.0);
        let p = n.predict_proba(&x);
        for r in 0..5 {
            assert!((p.row(r).iter().sum::<f32>() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn backprop_returns_gradient_per_layer() {
        let n = net();
        let x = Matrix::zeros(4, 4);
        let t = ops::one_hot(&[0, 1, 2, 0], 3);
        let (grads, loss) = n.backprop(&x, &t);
        assert_eq!(grads.len(), 3);
        assert!(loss.is_finite() && loss > 0.0);
        // Gradient shapes align with layer parameter shapes.
        for (g, l) in grads.iter().zip(n.layers()) {
            assert_eq!(g.weights.shape(), l.weights().shape());
            assert_eq!(g.bias.len(), l.bias().len());
        }
    }

    /// Whole-network gradient check through two hidden layers.
    #[test]
    fn backprop_matches_numerical_gradient() {
        let topo = MlpTopology::builder(3, 2)
            .hidden(4, Activation::Tanh, true)
            .build();
        let mut net = Mlp::from_topology(&topo, &mut StdRng::seed_from_u64(5));
        let mut rng = StdRng::seed_from_u64(9);
        let x = ecad_tensor::init::uniform(&mut rng, 4, 3, 1.0);
        let t = ops::one_hot(&[0, 1, 1, 0], 2);

        let (grads, _) = net.backprop(&x, &t);
        let eps = 1e-3f32;
        // Check a sample of weight coordinates in the first layer.
        for (r, c) in [(0, 0), (1, 2), (2, 3)] {
            let loss_at = |nudge: f32, net: &mut Mlp| {
                let mut bump = Matrix::zeros(3, 4);
                bump[(r, c)] = -nudge;
                net.layers_mut()[0].apply_update(&bump, &[0.0; 4]);
                let probs = net.predict_proba(&x);
                let loss = ops::cross_entropy(&probs, &t);
                bump[(r, c)] = nudge;
                net.layers_mut()[0].apply_update(&bump, &[0.0; 4]);
                loss
            };
            let up = loss_at(eps, &mut net);
            let down = loss_at(-eps, &mut net);
            let numeric = (up - down) / (2.0 * eps);
            let analytic = grads[0].weights[(r, c)];
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + analytic.abs()),
                "w[{r},{c}]: numeric {numeric} analytic {analytic}"
            );
        }
    }

    #[test]
    fn accuracy_on_labels() {
        let n = net();
        let x = Matrix::zeros(3, 4);
        let preds = n.predict(&x);
        let acc = n.accuracy(&x, &preds);
        assert!((acc - 1.0).abs() < 1e-6);
    }

    #[test]
    fn instantiation_is_deterministic_per_seed() {
        let topo = MlpTopology::builder(4, 2)
            .hidden(3, Activation::Relu, true)
            .build();
        let a = Mlp::from_topology(&topo, &mut StdRng::seed_from_u64(3));
        let b = Mlp::from_topology(&topo, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn is_finite_on_fresh_network() {
        assert!(net().is_finite());
    }
}
