//! First-order optimizers for MLP training.
//!
//! Two optimizers cover the candidates' needs: classic SGD with momentum
//! (robust, cheap) and Adam (fast convergence on the small, noisy
//! tabular benchmarks). Both keep per-parameter state aligned with the
//! network's layers and produce *steps* that
//! [`crate::DenseLayer::apply_update`] subtracts from the parameters.

use ecad_tensor::Matrix;

use crate::layer::LayerGrads;
use crate::Mlp;

/// Which optimizer the trainer should use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// Stochastic gradient descent with momentum.
    Sgd {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient in `[0, 1)`; 0 disables momentum.
        momentum: f32,
    },
    /// Adam (Kingma & Ba) with the usual defaults.
    Adam {
        /// Learning rate.
        lr: f32,
    },
}

impl OptimizerKind {
    /// Standard SGD: `lr = 0.1`, `momentum = 0.9`.
    pub fn sgd() -> Self {
        OptimizerKind::Sgd {
            lr: 0.1,
            momentum: 0.9,
        }
    }

    /// Standard Adam: `lr = 1e-3`.
    pub fn adam() -> Self {
        OptimizerKind::Adam { lr: 1e-3 }
    }
}

impl Default for OptimizerKind {
    fn default() -> Self {
        OptimizerKind::adam()
    }
}

/// Per-layer optimizer state plus the update rule.
#[derive(Debug, Clone)]
pub(crate) enum OptimizerState {
    Sgd(Sgd),
    Adam(Adam),
}

impl OptimizerState {
    pub(crate) fn new(kind: OptimizerKind, net: &Mlp) -> Self {
        match kind {
            OptimizerKind::Sgd { lr, momentum } => OptimizerState::Sgd(Sgd::new(lr, momentum, net)),
            OptimizerKind::Adam { lr } => OptimizerState::Adam(Adam::new(lr, net)),
        }
    }

    pub(crate) fn step(&mut self, net: &mut Mlp, grads: &[LayerGrads]) {
        match self {
            OptimizerState::Sgd(s) => s.step(net, grads),
            OptimizerState::Adam(a) => a.step(net, grads),
        }
    }
}

/// SGD with momentum: `v = mu*v + g; w -= lr*v`.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    vel_w: Vec<Matrix>,
    vel_b: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates SGD state shaped for `net`.
    pub fn new(lr: f32, momentum: f32, net: &Mlp) -> Self {
        Self {
            lr,
            momentum,
            vel_w: net
                .layers()
                .iter()
                .map(|l| Matrix::zeros(l.weights().rows(), l.weights().cols()))
                .collect(),
            vel_b: net
                .layers()
                .iter()
                .map(|l| vec![0.0; l.bias().len()])
                .collect(),
        }
    }

    /// Applies one update step.
    ///
    /// # Panics
    ///
    /// Panics if `grads` is not aligned with the network's layers.
    pub fn step(&mut self, net: &mut Mlp, grads: &[LayerGrads]) {
        assert_eq!(
            grads.len(),
            self.vel_w.len(),
            "gradient/layer count mismatch"
        );
        for (i, layer) in net.layers_mut().iter_mut().enumerate() {
            let g = &grads[i];
            let vw = &mut self.vel_w[i];
            vw.scale_inplace(self.momentum);
            vw.axpy_inplace(1.0, &g.weights).expect("gradient shape");
            let step_w = {
                let mut s = vw.clone();
                s.scale_inplace(self.lr);
                s
            };
            let vb = &mut self.vel_b[i];
            for (v, &gb) in vb.iter_mut().zip(&g.bias) {
                *v = self.momentum * *v + gb;
            }
            let step_b: Vec<f32> = vb.iter().map(|&v| self.lr * v).collect();
            layer.apply_update(&step_w, &step_b);
        }
    }
}

/// Adam optimizer with bias-corrected first/second moments.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u32,
    m_w: Vec<Matrix>,
    v_w: Vec<Matrix>,
    m_b: Vec<Vec<f32>>,
    v_b: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates Adam state shaped for `net` (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new(lr: f32, net: &Mlp) -> Self {
        let zero_w = |net: &Mlp| -> Vec<Matrix> {
            net.layers()
                .iter()
                .map(|l| Matrix::zeros(l.weights().rows(), l.weights().cols()))
                .collect()
        };
        let zero_b = |net: &Mlp| -> Vec<Vec<f32>> {
            net.layers()
                .iter()
                .map(|l| vec![0.0; l.bias().len()])
                .collect()
        };
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m_w: zero_w(net),
            v_w: zero_w(net),
            m_b: zero_b(net),
            v_b: zero_b(net),
        }
    }

    /// Applies one update step.
    ///
    /// # Panics
    ///
    /// Panics if `grads` is not aligned with the network's layers.
    pub fn step(&mut self, net: &mut Mlp, grads: &[LayerGrads]) {
        assert_eq!(grads.len(), self.m_w.len(), "gradient/layer count mismatch");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, layer) in net.layers_mut().iter_mut().enumerate() {
            let g = &grads[i];
            let (m, v) = (&mut self.m_w[i], &mut self.v_w[i]);
            let mut step_w = Matrix::zeros(g.weights.rows(), g.weights.cols());
            for j in 0..g.weights.len() {
                let gw = g.weights.as_slice()[j];
                let mj = self.beta1 * m.as_slice()[j] + (1.0 - self.beta1) * gw;
                let vj = self.beta2 * v.as_slice()[j] + (1.0 - self.beta2) * gw * gw;
                m.as_mut_slice()[j] = mj;
                v.as_mut_slice()[j] = vj;
                let m_hat = mj / bc1;
                let v_hat = vj / bc2;
                step_w.as_mut_slice()[j] = self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            let (mb, vb) = (&mut self.m_b[i], &mut self.v_b[i]);
            let mut step_b = vec![0.0f32; g.bias.len()];
            for j in 0..g.bias.len() {
                let gb = g.bias[j];
                mb[j] = self.beta1 * mb[j] + (1.0 - self.beta1) * gb;
                vb[j] = self.beta2 * vb[j] + (1.0 - self.beta2) * gb * gb;
                let m_hat = mb[j] / bc1;
                let v_hat = vb[j] / bc2;
                step_b[j] = self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            layer.apply_update(&step_w, &step_b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, MlpTopology};
    use ecad_tensor::ops;
    use rt::rand::rngs::StdRng;
    use rt::rand::SeedableRng;

    fn quadratic_setup() -> (Mlp, Matrix, Matrix) {
        // Tiny 1-layer net on a separable problem; loss should drop.
        let topo = MlpTopology::builder(2, 2).build();
        let net = Mlp::from_topology(&topo, &mut StdRng::seed_from_u64(0));
        let x = Matrix::from_rows(&[[1.0, 0.0], [0.0, 1.0], [1.0, 0.1], [0.1, 1.0]]);
        let t = ops::one_hot(&[0, 1, 0, 1], 2);
        (net, x, t)
    }

    fn loss_of(net: &Mlp, x: &Matrix, t: &Matrix) -> f32 {
        ops::cross_entropy(&net.predict_proba(x), t)
    }

    #[test]
    fn sgd_reduces_loss() {
        let (mut net, x, t) = quadratic_setup();
        let mut opt = Sgd::new(0.5, 0.0, &net);
        let before = loss_of(&net, &x, &t);
        for _ in 0..50 {
            let (grads, _) = net.backprop(&x, &t);
            opt.step(&mut net, &grads);
        }
        let after = loss_of(&net, &x, &t);
        assert!(after < before * 0.5, "before {before} after {after}");
    }

    #[test]
    fn momentum_accelerates_sgd() {
        let (net0, x, t) = quadratic_setup();
        let run = |momentum: f32| {
            let mut net = net0.clone();
            let mut opt = Sgd::new(0.05, momentum, &net);
            for _ in 0..30 {
                let (grads, _) = net.backprop(&x, &t);
                opt.step(&mut net, &grads);
            }
            loss_of(&net, &x, &t)
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn adam_reduces_loss() {
        let (mut net, x, t) = quadratic_setup();
        let mut opt = Adam::new(0.05, &net);
        let before = loss_of(&net, &x, &t);
        for _ in 0..100 {
            let (grads, _) = net.backprop(&x, &t);
            opt.step(&mut net, &grads);
        }
        let after = loss_of(&net, &x, &t);
        assert!(after < before * 0.3, "before {before} after {after}");
    }

    #[test]
    fn adam_keeps_parameters_finite() {
        let (mut net, x, t) = quadratic_setup();
        let mut opt = Adam::new(0.5, &net);
        for _ in 0..200 {
            let (grads, _) = net.backprop(&x, &t);
            opt.step(&mut net, &grads);
        }
        assert!(net.is_finite());
    }

    #[test]
    fn kind_constructors() {
        assert!(matches!(OptimizerKind::sgd(), OptimizerKind::Sgd { .. }));
        assert!(matches!(OptimizerKind::adam(), OptimizerKind::Adam { .. }));
        assert!(matches!(
            OptimizerKind::default(),
            OptimizerKind::Adam { .. }
        ));
    }

    #[test]
    fn optimizer_state_dispatches() {
        let (mut net, x, t) = quadratic_setup();
        let mut st = OptimizerState::new(OptimizerKind::sgd(), &net);
        let before = loss_of(&net, &x, &t);
        for _ in 0..30 {
            let (grads, _) = net.backprop(&x, &t);
            st.step(&mut net, &grads);
        }
        assert!(loss_of(&net, &x, &t) < before);
    }

    #[test]
    fn deep_net_trains_with_works_on_all_layer_shapes() {
        let topo = MlpTopology::builder(3, 2)
            .hidden(8, Activation::Relu, true)
            .hidden(4, Activation::Tanh, false)
            .build();
        let mut net = Mlp::from_topology(&topo, &mut StdRng::seed_from_u64(1));
        let x = Matrix::from_rows(&[[1.0, 0.0, 0.0], [0.0, 1.0, 1.0]]);
        let t = ops::one_hot(&[0, 1], 2);
        let mut opt = Adam::new(0.01, &net);
        let before = loss_of(&net, &x, &t);
        for _ in 0..100 {
            let (grads, _) = net.backprop(&x, &t);
            opt.step(&mut net, &grads);
        }
        assert!(loss_of(&net, &x, &t) < before);
    }
}
