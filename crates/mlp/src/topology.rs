//! MLP topology description — the NNA half of a co-design candidate.


use crate::Activation;

/// One dense layer in a topology: output width, activation, bias flag.
///
/// These are exactly the per-layer genes the paper's evolutionary process
/// mutates (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayerSpec {
    /// Number of neurons (the GEMM `n` dimension of this layer).
    pub neurons: usize,
    /// Activation applied after the affine transform.
    pub activation: Activation,
    /// Whether the layer adds a bias vector.
    pub bias: bool,
}

impl LayerSpec {
    /// Creates a layer spec.
    pub fn new(neurons: usize, activation: Activation, bias: bool) -> Self {
        Self {
            neurons,
            activation,
            bias,
        }
    }
}

/// A complete MLP topology: input width, hidden layers, and class count.
///
/// The output layer (`n_classes` wide, softmax, with bias) is implicit —
/// every candidate classifier needs one, so it is not part of the
/// searchable genome.
///
/// # Example
///
/// ```
/// use ecad_mlp::{Activation, MlpTopology};
///
/// let t = MlpTopology::builder(784, 10)
///     .hidden(256, Activation::Relu, true)
///     .hidden(128, Activation::Relu, true)
///     .build();
/// assert_eq!(t.param_count(), 784 * 256 + 256 + 256 * 128 + 128 + 128 * 10 + 10);
/// assert_eq!(t.gemm_shapes(1), vec![(1, 784, 256), (1, 256, 128), (1, 128, 10)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MlpTopology {
    input: usize,
    hidden: Vec<LayerSpec>,
    n_classes: usize,
}

impl MlpTopology {
    /// Starts building a topology for `input` features and `n_classes`
    /// output classes.
    ///
    /// # Panics
    ///
    /// Panics if `input == 0` or `n_classes < 2`.
    pub fn builder(input: usize, n_classes: usize) -> TopologyBuilder {
        assert!(input > 0, "input width must be positive");
        assert!(n_classes >= 2, "need at least two classes");
        TopologyBuilder {
            input,
            hidden: Vec::new(),
            n_classes,
        }
    }

    /// Input feature count (the GEMM `k` of the first layer).
    pub fn input(&self) -> usize {
        self.input
    }

    /// Hidden layer specs, in order.
    pub fn hidden(&self) -> &[LayerSpec] {
        &self.hidden
    }

    /// Output class count.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of hidden layers.
    pub fn depth(&self) -> usize {
        self.hidden.len()
    }

    /// Total hidden neurons — the paper's "network size" axis when
    /// correlating size against accuracy and throughput.
    pub fn total_neurons(&self) -> usize {
        self.hidden.iter().map(|l| l.neurons).sum()
    }

    /// Widths of every affine transform as `(fan_in, fan_out, bias)`,
    /// including the implicit output layer.
    pub fn affine_dims(&self) -> Vec<(usize, usize, bool)> {
        let mut dims = Vec::with_capacity(self.hidden.len() + 1);
        let mut fan_in = self.input;
        for l in &self.hidden {
            dims.push((fan_in, l.neurons, l.bias));
            fan_in = l.neurons;
        }
        dims.push((fan_in, self.n_classes, true));
        dims
    }

    /// Trainable parameter count (weights + biases).
    pub fn param_count(&self) -> usize {
        self.affine_dims()
            .iter()
            .map(|&(k, n, b)| k * n + if b { n } else { 0 })
            .sum()
    }

    /// GEMM problem sizes `(m, k, n)` for a forward pass at `batch` rows —
    /// the decomposition the hardware models consume (§III-D: "GEMM
    /// nomenclature can be used to describe the three key dimensions").
    pub fn gemm_shapes(&self, batch: usize) -> Vec<(usize, usize, usize)> {
        self.affine_dims()
            .iter()
            .map(|&(k, n, _)| (batch, k, n))
            .collect()
    }

    /// Floating-point operations for one forward pass of one sample
    /// (the `2·m·k·n` GEMM count at `m = 1`, summed over layers).
    pub fn flops_per_sample(&self) -> u64 {
        self.gemm_shapes(1)
            .iter()
            .map(|&(m, k, n)| ecad_tensor::gemm::gemm_flops(m, k, n))
            .sum()
    }

    /// Canonical compact description, e.g. `784-256r+b-10` — stable
    /// across runs, used for dedup hashing and logs.
    pub fn describe(&self) -> String {
        let mut s = format!("{}", self.input);
        for l in &self.hidden {
            s.push_str(&format!(
                "-{}{}{}",
                l.neurons,
                &l.activation.name()[..1],
                if l.bias { "+b" } else { "" }
            ));
        }
        s.push_str(&format!("-{}", self.n_classes));
        s
    }
}

/// Builder returned by [`MlpTopology::builder`].
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    input: usize,
    hidden: Vec<LayerSpec>,
    n_classes: usize,
}

impl TopologyBuilder {
    /// Appends a hidden layer.
    ///
    /// # Panics
    ///
    /// Panics if `neurons == 0`.
    pub fn hidden(mut self, neurons: usize, activation: Activation, bias: bool) -> Self {
        assert!(neurons > 0, "hidden layer must have at least one neuron");
        self.hidden.push(LayerSpec::new(neurons, activation, bias));
        self
    }

    /// Appends a hidden layer from a [`LayerSpec`].
    pub fn layer(mut self, spec: LayerSpec) -> Self {
        assert!(
            spec.neurons > 0,
            "hidden layer must have at least one neuron"
        );
        self.hidden.push(spec);
        self
    }

    /// Finalizes the topology. A topology with zero hidden layers is a
    /// softmax (multinomial logistic) classifier, which is a legal
    /// degenerate candidate.
    pub fn build(self) -> MlpTopology {
        MlpTopology {
            input: self.input,
            hidden: self.hidden,
            n_classes: self.n_classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> MlpTopology {
        MlpTopology::builder(10, 3)
            .hidden(8, Activation::Relu, true)
            .hidden(4, Activation::Tanh, false)
            .build()
    }

    #[test]
    fn affine_dims_chain_correctly() {
        assert_eq!(
            topo().affine_dims(),
            vec![(10, 8, true), (8, 4, false), (4, 3, true)]
        );
    }

    #[test]
    fn param_count_includes_bias_only_when_set() {
        // 10*8 + 8 + 8*4 + 0 + 4*3 + 3 = 135
        assert_eq!(topo().param_count(), 135);
    }

    #[test]
    fn gemm_shapes_scale_with_batch() {
        assert_eq!(
            topo().gemm_shapes(32),
            vec![(32, 10, 8), (32, 8, 4), (32, 4, 3)]
        );
    }

    #[test]
    fn flops_per_sample_matches_hand_count() {
        // 2*(10*8 + 8*4 + 4*3) = 2*124 = 248
        assert_eq!(topo().flops_per_sample(), 248);
    }

    #[test]
    fn total_neurons_sums_hidden_only() {
        assert_eq!(topo().total_neurons(), 12);
    }

    #[test]
    fn zero_hidden_layers_is_logistic_regression() {
        let t = MlpTopology::builder(5, 2).build();
        assert_eq!(t.depth(), 0);
        assert_eq!(t.affine_dims(), vec![(5, 2, true)]);
        assert_eq!(t.param_count(), 12);
    }

    #[test]
    fn describe_is_stable_and_readable() {
        assert_eq!(topo().describe(), "10-8r+b-4t-3");
    }

    #[test]
    #[should_panic(expected = "at least one neuron")]
    fn zero_width_layer_rejected() {
        let _ = MlpTopology::builder(4, 2).hidden(0, Activation::Relu, true);
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn one_class_rejected() {
        let _ = MlpTopology::builder(4, 1);
    }
}
