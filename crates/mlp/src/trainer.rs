//! Minibatch training loop with early stopping.
//!
//! The ECAD simulation worker trains each candidate topology and reports
//! test accuracy; this module is that training loop. It standardizes
//! nothing (callers standardize via `ecad-dataset`'s scaler), shuffles
//! per epoch, supports early stopping on training loss plateau, and
//! fails soft: a candidate whose training diverges returns a
//! [`TrainError::Diverged`] rather than poisoning the search.

use std::error::Error;
use std::fmt;

use ecad_dataset::Dataset;
use ecad_tensor::ops;
use rt::rand::seq::SliceRandom;
use rt::rand::Rng;

use crate::optimizer::OptimizerState;
use crate::{Mlp, MlpTopology, OptimizerKind};

/// Error produced by [`Trainer::fit`].
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// The dataset's feature width does not match the topology input.
    InputMismatch {
        /// Topology input width.
        expected: usize,
        /// Dataset feature count.
        found: usize,
    },
    /// The dataset's class count exceeds the topology's output width.
    ClassMismatch {
        /// Topology class count.
        expected: usize,
        /// Dataset class count.
        found: usize,
    },
    /// Training produced non-finite parameters (exploding gradients).
    Diverged {
        /// Epoch at which divergence was detected.
        epoch: usize,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::InputMismatch { expected, found } => {
                write!(
                    f,
                    "topology expects {expected} inputs, dataset has {found} features"
                )
            }
            TrainError::ClassMismatch { expected, found } => {
                write!(
                    f,
                    "topology expects {expected} classes, dataset has {found}"
                )
            }
            TrainError::Diverged { epoch } => {
                write!(f, "training diverged at epoch {epoch}")
            }
        }
    }
}

impl Error for TrainError {}

/// Hyperparameters for one training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Maximum number of epochs.
    pub epochs: usize,
    /// Minibatch size (clamped to the dataset size).
    pub batch_size: usize,
    /// Optimizer and learning rate.
    pub optimizer: OptimizerKind,
    /// Stop if training loss fails to improve by `min_delta` for this
    /// many consecutive epochs. `0` disables early stopping.
    pub patience: usize,
    /// Minimum loss improvement that counts as progress.
    pub min_delta: f32,
    /// L2 weight-decay strength added to every weight gradient
    /// (sklearn `MLPClassifier`'s `alpha`; biases are not decayed).
    /// `0.0` disables regularization.
    pub weight_decay: f32,
}

impl TrainConfig {
    /// A fast configuration for searches: Adam, 30 epochs, batch 32,
    /// patience 5. This is the default the evolutionary engine uses per
    /// candidate.
    pub fn fast() -> Self {
        Self {
            epochs: 30,
            batch_size: 32,
            optimizer: OptimizerKind::adam(),
            patience: 5,
            min_delta: 1e-4,
            weight_decay: 1e-4,
        }
    }

    /// A thorough configuration for final refits: Adam, 120 epochs,
    /// batch 32, patience 12.
    pub fn thorough() -> Self {
        Self {
            epochs: 120,
            batch_size: 32,
            optimizer: OptimizerKind::adam(),
            patience: 12,
            min_delta: 1e-5,
            weight_decay: 1e-4,
        }
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self::fast()
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Per-epoch mean training loss.
    pub loss_history: Vec<f32>,
    /// Accuracy on the training set after the final epoch.
    pub train_accuracy: f32,
    /// Accuracy on the held-out test set after the final epoch.
    pub test_accuracy: f32,
    /// Epochs actually run (≤ `config.epochs` with early stopping).
    pub epochs_run: usize,
    /// Whether early stopping triggered.
    pub early_stopped: bool,
}

/// Trains [`Mlp`] instances from topologies.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: TrainConfig) -> Self {
        Self { config }
    }

    /// The trainer's configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Instantiates `topology`, trains it on `train`, and evaluates on
    /// `test`. Returns the report; use [`Trainer::fit_network`] to keep
    /// the trained network.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] on shape mismatches or divergence.
    pub fn fit<R: Rng + ?Sized>(
        &self,
        topology: &MlpTopology,
        train: &Dataset,
        test: &Dataset,
        rng: &mut R,
    ) -> Result<TrainReport, TrainError> {
        self.fit_network(topology, train, test, rng).map(|(_, r)| r)
    }

    /// Like [`Trainer::fit`] but also returns the trained network.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] on shape mismatches or divergence.
    pub fn fit_network<R: Rng + ?Sized>(
        &self,
        topology: &MlpTopology,
        train: &Dataset,
        test: &Dataset,
        rng: &mut R,
    ) -> Result<(Mlp, TrainReport), TrainError> {
        if train.n_features() != topology.input() {
            return Err(TrainError::InputMismatch {
                expected: topology.input(),
                found: train.n_features(),
            });
        }
        if train.n_classes() > topology.n_classes() {
            return Err(TrainError::ClassMismatch {
                expected: topology.n_classes(),
                found: train.n_classes(),
            });
        }

        let mut net = Mlp::from_topology(topology, rng);
        let mut opt = OptimizerState::new(self.config.optimizer, &net);
        let n = train.len();
        let batch = self.config.batch_size.clamp(1, n);
        let targets = ops::one_hot(train.labels(), topology.n_classes());

        let mut order: Vec<usize> = (0..n).collect();
        let mut loss_history = Vec::with_capacity(self.config.epochs);
        let mut best_loss = f32::INFINITY;
        let mut stale = 0usize;
        let mut early_stopped = false;

        for epoch in 0..self.config.epochs {
            let _prof = rt::prof_span!("epoch");
            order.shuffle(rng);
            let mut epoch_loss = 0.0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(batch) {
                let xb = train.features().select_rows(chunk);
                let tb = targets.select_rows(chunk);
                let (mut grads, loss) = net.backprop(&xb, &tb);
                if self.config.weight_decay > 0.0 {
                    for (g, layer) in grads.iter_mut().zip(net.layers()) {
                        g.weights
                            .axpy_inplace(self.config.weight_decay, layer.weights())
                            .expect("gradient/weight shapes match");
                    }
                }
                opt.step(&mut net, &grads);
                epoch_loss += loss as f64;
                batches += 1;
            }
            let mean_loss = (epoch_loss / batches.max(1) as f64) as f32;
            loss_history.push(mean_loss);

            if !mean_loss.is_finite() || !net.is_finite() {
                return Err(TrainError::Diverged { epoch });
            }

            if self.config.patience > 0 {
                if mean_loss + self.config.min_delta < best_loss {
                    best_loss = mean_loss;
                    stale = 0;
                } else {
                    stale += 1;
                    if stale >= self.config.patience {
                        early_stopped = true;
                        break;
                    }
                }
            }
        }

        let train_accuracy = net.accuracy(train.features(), train.labels());
        let test_accuracy = net.accuracy(test.features(), test.labels());
        let epochs_run = loss_history.len();
        Ok((
            net,
            TrainReport {
                loss_history,
                train_accuracy,
                test_accuracy,
                epochs_run,
                early_stopped,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Activation;
    use ecad_dataset::synth::SyntheticSpec;
    use rt::rand::rngs::StdRng;
    use rt::rand::SeedableRng;

    fn easy_dataset() -> Dataset {
        SyntheticSpec::new("easy", 300, 6, 2)
            .with_class_sep(4.0)
            .with_nonlinearity(0.0)
            .with_seed(0)
            .generate()
    }

    #[test]
    fn fit_learns_separable_data() {
        let ds = easy_dataset();
        let mut rng = StdRng::seed_from_u64(0);
        let (train, test) = ds.split(0.3, &mut rng);
        let topo = MlpTopology::builder(6, 2)
            .hidden(16, Activation::Relu, true)
            .build();
        let report = Trainer::new(TrainConfig::fast())
            .fit(&topo, &train, &test, &mut rng)
            .unwrap();
        assert!(
            report.test_accuracy > 0.9,
            "accuracy {}",
            report.test_accuracy
        );
    }

    #[test]
    fn loss_decreases_over_training() {
        let ds = easy_dataset();
        let mut rng = StdRng::seed_from_u64(1);
        let topo = MlpTopology::builder(6, 2)
            .hidden(8, Activation::Tanh, true)
            .build();
        let report = Trainer::new(TrainConfig::fast())
            .fit(&topo, &ds, &ds, &mut rng)
            .unwrap();
        let first = report.loss_history[0];
        let last = *report.loss_history.last().unwrap();
        assert!(last < first, "first {first} last {last}");
    }

    #[test]
    fn input_mismatch_is_reported() {
        let ds = easy_dataset();
        let topo = MlpTopology::builder(99, 2).build();
        let err = Trainer::new(TrainConfig::fast())
            .fit(&topo, &ds, &ds, &mut StdRng::seed_from_u64(0))
            .unwrap_err();
        assert_eq!(
            err,
            TrainError::InputMismatch {
                expected: 99,
                found: 6
            }
        );
    }

    #[test]
    fn class_mismatch_is_reported() {
        let ds = SyntheticSpec::new("c4", 40, 4, 4).generate();
        let topo = MlpTopology::builder(4, 2).build();
        let err = Trainer::new(TrainConfig::fast())
            .fit(&topo, &ds, &ds, &mut StdRng::seed_from_u64(0))
            .unwrap_err();
        assert_eq!(
            err,
            TrainError::ClassMismatch {
                expected: 2,
                found: 4
            }
        );
    }

    #[test]
    fn early_stopping_triggers_on_plateau() {
        let ds = easy_dataset();
        let mut cfg = TrainConfig::fast();
        cfg.epochs = 100;
        cfg.patience = 3;
        cfg.min_delta = 10.0; // impossible improvement => stops after patience
        let report = Trainer::new(cfg)
            .fit(
                &MlpTopology::builder(6, 2).build(),
                &ds,
                &ds,
                &mut StdRng::seed_from_u64(2),
            )
            .unwrap();
        assert!(report.early_stopped);
        assert!(report.epochs_run <= 5);
    }

    #[test]
    fn zero_patience_disables_early_stopping() {
        let ds = easy_dataset();
        let mut cfg = TrainConfig::fast();
        cfg.epochs = 7;
        cfg.patience = 0;
        let report = Trainer::new(cfg)
            .fit(
                &MlpTopology::builder(6, 2).build(),
                &ds,
                &ds,
                &mut StdRng::seed_from_u64(2),
            )
            .unwrap();
        assert_eq!(report.epochs_run, 7);
        assert!(!report.early_stopped);
    }

    #[test]
    fn divergence_is_detected_not_propagated_as_nan() {
        let ds = easy_dataset();
        let mut cfg = TrainConfig::fast();
        // Absurd learning rate to force explosion on a deep net.
        cfg.optimizer = OptimizerKind::Sgd {
            lr: 1e8,
            momentum: 0.99,
        };
        cfg.epochs = 50;
        cfg.patience = 0;
        let topo = MlpTopology::builder(6, 2)
            .hidden(32, Activation::Relu, true)
            .hidden(32, Activation::Relu, true)
            .build();
        let res = Trainer::new(cfg).fit(&topo, &ds, &ds, &mut StdRng::seed_from_u64(3));
        match res {
            Err(TrainError::Diverged { .. }) => {}
            Ok(r) => {
                // If it survived, parameters must still be finite.
                assert!(r.test_accuracy.is_finite());
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn fit_network_returns_usable_model() {
        let ds = easy_dataset();
        let mut rng = StdRng::seed_from_u64(4);
        let topo = MlpTopology::builder(6, 2)
            .hidden(8, Activation::Relu, true)
            .build();
        let (net, report) = Trainer::new(TrainConfig::fast())
            .fit_network(&topo, &ds, &ds, &mut rng)
            .unwrap();
        let acc = net.accuracy(ds.features(), ds.labels());
        assert!((acc - report.train_accuracy).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_shrinks_weight_norm() {
        let ds = easy_dataset();
        let norm_with = |wd: f32| {
            let mut cfg = TrainConfig::fast();
            cfg.epochs = 20;
            cfg.patience = 0;
            cfg.weight_decay = wd;
            let topo = MlpTopology::builder(6, 2)
                .hidden(32, Activation::Relu, true)
                .build();
            let (net, _) = Trainer::new(cfg)
                .fit_network(&topo, &ds, &ds, &mut StdRng::seed_from_u64(8))
                .unwrap();
            net.layers()
                .iter()
                .map(|l| l.weights().frobenius_norm())
                .sum::<f32>()
        };
        assert!(
            norm_with(0.05) < norm_with(0.0),
            "decay must shrink weights"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = easy_dataset();
        let topo = MlpTopology::builder(6, 2)
            .hidden(8, Activation::Relu, true)
            .build();
        let run = |seed: u64| {
            Trainer::new(TrainConfig::fast())
                .fit(&topo, &ds, &ds, &mut StdRng::seed_from_u64(seed))
                .unwrap()
                .test_accuracy
        };
        assert_eq!(run(11), run(11));
    }
}
