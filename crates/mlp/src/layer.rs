//! A single dense layer with forward and backward passes.

use ecad_tensor::{gemm, init, ops, Matrix};
use rt::rand::Rng;

use crate::Activation;

/// A dense (fully-connected) layer: `y = act(x W + b)`.
///
/// Weights are stored `fan_in x fan_out` so the forward pass is a plain
/// row-major GEMM. He initialization is used for ReLU layers, Xavier for
/// the saturating activations (see [`crate::Mlp`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DenseLayer {
    weights: Matrix,
    bias: Vec<f32>,
    activation: Activation,
    use_bias: bool,
}

/// Gradients produced by a backward pass through one layer.
#[derive(Debug, Clone)]
pub struct LayerGrads {
    /// Gradient of the loss w.r.t. the weights (same shape as weights).
    pub weights: Matrix,
    /// Gradient w.r.t. the bias (empty when the layer has no bias).
    pub bias: Vec<f32>,
}

impl DenseLayer {
    /// Creates a layer with activation-appropriate random initialization.
    pub fn new<R: Rng + ?Sized>(
        fan_in: usize,
        fan_out: usize,
        activation: Activation,
        use_bias: bool,
        rng: &mut R,
    ) -> Self {
        let weights = match activation {
            Activation::Relu => init::he(rng, fan_in, fan_out),
            _ => init::xavier(rng, fan_in, fan_out),
        };
        Self {
            weights,
            bias: vec![0.0; if use_bias { fan_out } else { 0 }],
            activation,
            use_bias,
        }
    }

    /// Input width.
    pub fn fan_in(&self) -> usize {
        self.weights.rows()
    }

    /// Output width.
    pub fn fan_out(&self) -> usize {
        self.weights.cols()
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Whether the layer applies a bias.
    pub fn has_bias(&self) -> bool {
        self.use_bias
    }

    /// Borrows the weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Borrows the bias vector (empty when `!has_bias()`).
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Forward pass: returns the activated output for a batch.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != fan_in()`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut z = if self.use_bias {
            gemm::matmul_bias(x, &self.weights, &self.bias)
        } else {
            gemm::matmul(x, &self.weights)
        };
        let _prof = rt::prof_span!("activation");
        let act = self.activation;
        z.map_inplace(|v| act.apply(v));
        z
    }

    /// Backward pass.
    ///
    /// Given the layer input `x`, the *activated* output `y` from the
    /// forward pass, and the upstream gradient `d_out` (w.r.t. `y`),
    /// returns the gradient w.r.t. `x` plus this layer's parameter
    /// gradients.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are inconsistent with the forward pass.
    pub fn backward(&self, x: &Matrix, y: &Matrix, d_out: &Matrix) -> (Matrix, LayerGrads) {
        // dZ = dY * act'(y), elementwise.
        let act = self.activation;
        let dz = d_out
            .zip_with(y, "backward", |g, yv| g * act.derivative_from_output(yv))
            .expect("forward/backward shape mismatch");
        // dW = X^T dZ ; db = col_sums(dZ) ; dX = dZ W^T.
        let d_weights = gemm::matmul_at_b(x, &dz);
        let d_bias = if self.use_bias {
            ops::col_sums(&dz)
        } else {
            Vec::new()
        };
        let d_input = gemm::matmul_a_bt(&dz, &self.weights);
        (
            d_input,
            LayerGrads {
                weights: d_weights,
                bias: d_bias,
            },
        )
    }

    /// Applies a parameter update: `w -= step_w`, `b -= step_b`.
    ///
    /// The optimizer computes the step (which already includes the
    /// learning rate and any momentum/Adam scaling).
    ///
    /// # Panics
    ///
    /// Panics if shapes do not match the layer's parameters.
    pub fn apply_update(&mut self, step_w: &Matrix, step_b: &[f32]) {
        self.weights
            .axpy_inplace(-1.0, step_w)
            .expect("weight update shape mismatch");
        assert_eq!(step_b.len(), self.bias.len(), "bias update shape mismatch");
        for (b, s) in self.bias.iter_mut().zip(step_b) {
            *b -= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt::rand::rngs::StdRng;
    use rt::rand::SeedableRng;

    fn layer(act: Activation, bias: bool) -> DenseLayer {
        let mut rng = StdRng::seed_from_u64(42);
        DenseLayer::new(4, 3, act, bias, &mut rng)
    }

    #[test]
    fn forward_shape() {
        let l = layer(Activation::Relu, true);
        let x = Matrix::zeros(5, 4);
        assert_eq!(l.forward(&x).shape(), (5, 3));
    }

    #[test]
    fn forward_without_bias_is_pure_gemm() {
        let l = layer(Activation::Identity, false);
        let x = Matrix::identity(4);
        let y = l.forward(&x);
        assert_eq!(&y, l.weights());
    }

    #[test]
    fn relu_forward_is_nonnegative() {
        let l = layer(Activation::Relu, true);
        let mut rng = StdRng::seed_from_u64(1);
        let x = ecad_tensor::init::uniform(&mut rng, 8, 4, 3.0);
        assert!(l.forward(&x).as_slice().iter().all(|&v| v >= 0.0));
    }

    /// Numerical gradient check: perturb each weight, compare loss delta
    /// against the analytic gradient. This is the canonical backprop
    /// correctness test.
    #[test]
    fn backward_matches_numerical_gradient() {
        for act in [Activation::Identity, Activation::Tanh, Activation::Sigmoid] {
            let mut l = layer(act, true);
            let mut rng = StdRng::seed_from_u64(7);
            let x = ecad_tensor::init::uniform(&mut rng, 3, 4, 1.0);
            // Loss = sum(y); then dL/dy = ones.
            let y = l.forward(&x);
            let d_out = Matrix::filled(3, 3, 1.0);
            let (_, grads) = l.backward(&x, &y, &d_out);

            let eps = 1e-3f32;
            for r in 0..4 {
                for c in 0..3 {
                    let orig = l.weights()[(r, c)];
                    let mut bump = Matrix::zeros(4, 3);
                    bump[(r, c)] = -eps; // apply_update subtracts
                    l.apply_update(&bump, &[0.0; 3]);
                    let up: f32 = l.forward(&x).as_slice().iter().sum();
                    bump[(r, c)] = 2.0 * eps;
                    l.apply_update(&bump, &[0.0; 3]);
                    let down: f32 = l.forward(&x).as_slice().iter().sum();
                    // restore
                    bump[(r, c)] = -eps;
                    l.apply_update(&bump, &[0.0; 3]);
                    assert!((l.weights()[(r, c)] - orig).abs() < 1e-5);

                    let numeric = (up - down) / (2.0 * eps);
                    let analytic = grads.weights[(r, c)];
                    assert!(
                        (numeric - analytic).abs() < 2e-2 * (1.0 + analytic.abs()),
                        "{act} w[{r},{c}]: numeric {numeric} analytic {analytic}"
                    );
                }
            }
        }
    }

    #[test]
    fn bias_gradient_is_column_sum() {
        let l = layer(Activation::Identity, true);
        let x = Matrix::filled(4, 4, 0.5);
        let y = l.forward(&x);
        let d_out = Matrix::filled(4, 3, 1.0);
        let (_, grads) = l.backward(&x, &y, &d_out);
        // Identity activation: db = sum over the 4 rows of ones = 4.
        assert_eq!(grads.bias, vec![4.0, 4.0, 4.0]);
    }

    #[test]
    fn no_bias_layer_has_empty_bias_grads() {
        let l = layer(Activation::Relu, false);
        let x = Matrix::zeros(2, 4);
        let y = l.forward(&x);
        let (_, grads) = l.backward(&x, &y, &Matrix::zeros(2, 3));
        assert!(grads.bias.is_empty());
        assert!(l.bias().is_empty());
    }

    #[test]
    fn d_input_shape_matches_x() {
        let l = layer(Activation::Tanh, true);
        let x = Matrix::zeros(6, 4);
        let y = l.forward(&x);
        let (dx, _) = l.backward(&x, &y, &Matrix::zeros(6, 3));
        assert_eq!(dx.shape(), x.shape());
    }
}
