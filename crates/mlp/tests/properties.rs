//! Property tests for the MLP stack: structural invariants of
//! topologies, batch-consistency of inference, and gradient sanity.
//! Runs on `rt::check`.

use ecad_mlp::{Activation, Mlp, MlpTopology, TrainConfig, Trainer};
use ecad_tensor::{init, ops};
use rt::check::{map, select, vec, Gen};
use rt::rand::rngs::StdRng;
use rt::rand::SeedableRng;
use rt::{prop_assert, prop_assert_eq, prop_assert_ne};

fn arb_topology() -> impl Gen<Value = MlpTopology> {
    map(
        (
            1usize..20, // input
            2usize..6,  // classes
            vec((1usize..32, 0usize..4, select(vec![false, true])), 0..4),
        ),
        |(input, classes, layers)| {
            let mut b = MlpTopology::builder(input, classes);
            for (neurons, act, bias) in layers {
                b = b.hidden(neurons, Activation::ALL[act], bias);
            }
            b.build()
        },
    )
}

rt::prop! {
    #![cases(64)]

    /// Parameter count equals the sum over affine dims; GEMM shapes
    /// chain (layer i's n == layer i+1's k).
    fn topology_structural_invariants(topo in arb_topology()) {
        let dims = topo.affine_dims();
        let params: usize = dims.iter().map(|&(k, n, b)| k * n + usize::from(b) * n).sum();
        prop_assert_eq!(topo.param_count(), params);
        let shapes = topo.gemm_shapes(8);
        for w in shapes.windows(2) {
            prop_assert_eq!(w[0].2, w[1].1, "layer output width must feed the next layer");
        }
        prop_assert_eq!(shapes[0].1, topo.input());
        prop_assert_eq!(shapes.last().unwrap().2, topo.n_classes());
    }

    /// Instantiated networks have exactly the declared parameter count.
    fn network_matches_topology(topo in arb_topology(), seed in 0u64..100) {
        let net = Mlp::from_topology(&topo, &mut StdRng::seed_from_u64(seed));
        let stored: usize = net
            .layers()
            .iter()
            .map(|l| l.weights().len() + l.bias().len())
            .sum();
        prop_assert_eq!(stored, topo.param_count());
        prop_assert!(net.is_finite());
    }

    /// Inference is row-independent: predicting a batch equals
    /// predicting each row alone.
    fn forward_is_batch_consistent(topo in arb_topology(), seed in 0u64..100, rows in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Mlp::from_topology(&topo, &mut rng);
        let x = init::uniform(&mut rng, rows, topo.input(), 2.0);
        let batch = net.forward(&x);
        for r in 0..rows {
            let single = net.forward(&x.select_rows(&[r]));
            for (a, b) in batch.row(r).iter().zip(single.row(0)) {
                prop_assert!((a - b).abs() < 1e-5, "{a} vs {b}");
            }
        }
    }

    /// Softmax probabilities from any network are valid distributions.
    fn predict_proba_is_distribution(topo in arb_topology(), seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Mlp::from_topology(&topo, &mut rng);
        let x = init::uniform(&mut rng, 5, topo.input(), 3.0);
        let p = net.predict_proba(&x);
        prop_assert!(p.all_finite());
        for r in 0..p.rows() {
            prop_assert!((p.row(r).iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }
    }

    /// Backprop gradients always have parameter shapes and finite
    /// values for bounded inputs.
    fn backprop_shapes_and_finiteness(topo in arb_topology(), seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Mlp::from_topology(&topo, &mut rng);
        let x = init::uniform(&mut rng, 4, topo.input(), 2.0);
        let labels: Vec<usize> = (0..4).map(|i| i % topo.n_classes()).collect();
        let targets = ops::one_hot(&labels, topo.n_classes());
        let (grads, loss) = net.backprop(&x, &targets);
        prop_assert!(loss.is_finite() && loss >= 0.0);
        prop_assert_eq!(grads.len(), net.layers().len());
        for (g, l) in grads.iter().zip(net.layers()) {
            prop_assert_eq!(g.weights.shape(), l.weights().shape());
            prop_assert_eq!(g.bias.len(), l.bias().len());
            prop_assert!(g.weights.all_finite());
        }
    }

    /// Instantiation is a pure function of (topology, seed): same seed,
    /// same network; different seeds, different weights (with
    /// overwhelming probability on non-degenerate topologies).
    fn instantiation_pure_in_seed(topo in arb_topology(), seed in 0u64..50) {
        let a = Mlp::from_topology(&topo, &mut StdRng::seed_from_u64(seed));
        let b = Mlp::from_topology(&topo, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(&a, &b);
        if topo.param_count() > 4 {
            let c = Mlp::from_topology(&topo, &mut StdRng::seed_from_u64(seed ^ 0xDEAD));
            prop_assert_ne!(a, c);
        }
    }

    /// Training on pure noise never reports accuracy outside [0, 1] and
    /// never returns non-finite parameters.
    fn training_robust_on_noise(seed in 0u64..30) {
        use ecad_dataset::synth::SyntheticSpec;
        let ds = SyntheticSpec::new("noise", 60, 5, 2)
            .with_class_sep(0.0)
            .with_label_noise(0.45)
            .with_seed(seed)
            .generate();
        let topo = MlpTopology::builder(5, 2).hidden(8, Activation::Relu, true).build();
        let mut cfg = TrainConfig::fast();
        cfg.epochs = 4;
        let mut rng = StdRng::seed_from_u64(seed);
        if let Ok((net, report)) = Trainer::new(cfg).fit_network(&topo, &ds, &ds, &mut rng) {
            prop_assert!((0.0..=1.0).contains(&report.test_accuracy));
            prop_assert!(net.is_finite());
        }
    }
}
