//! Random matrix initializers.
//!
//! Weight initialization matters for the candidate MLPs the evolutionary
//! engine trains: poorly scaled weights make deep candidates look
//! spuriously bad and bias the search. The schemes here are the standard
//! ones — uniform, Glorot/Xavier, and He — all driven by a caller-supplied
//! RNG so that a seeded search is fully reproducible.

use rt::rand::Rng;

use crate::Matrix;

/// A matrix with entries drawn uniformly from `[-limit, limit]`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize, limit: f32) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-limit..=limit))
}

/// Glorot/Xavier-uniform initialization: `limit = sqrt(6 / (fan_in + fan_out))`.
///
/// Suited to sigmoid/tanh layers; keeps activation variance roughly
/// constant through depth.
pub fn xavier<R: Rng + ?Sized>(rng: &mut R, fan_in: usize, fan_out: usize) -> Matrix {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(rng, fan_in, fan_out, limit)
}

/// He-uniform initialization: `limit = sqrt(6 / fan_in)`.
///
/// Suited to ReLU layers, which halve activation variance.
pub fn he<R: Rng + ?Sized>(rng: &mut R, fan_in: usize, fan_out: usize) -> Matrix {
    let limit = (6.0 / fan_in.max(1) as f32).sqrt();
    uniform(rng, fan_in, fan_out, limit)
}

/// A matrix with entries drawn from a standard normal scaled by `sigma`.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize, sigma: f32) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| sigma * standard_normal(rng))
}

/// One draw from a standard normal via the Box–Muller transform.
///
/// Implemented locally so the crate only needs `rand`'s core uniform
/// sampling (no `rand_distr` dependency).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // Avoid ln(0) by sampling the half-open interval away from zero.
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt::rand::rngs::StdRng;
    use rt::rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = uniform(&mut rng, 20, 20, 0.5);
        assert!(m.as_slice().iter().all(|&x| (-0.5..=0.5).contains(&x)));
    }

    #[test]
    fn xavier_limit_shrinks_with_fan() {
        let mut rng = StdRng::seed_from_u64(2);
        let wide = xavier(&mut rng, 1000, 1000);
        let lim = (6.0f32 / 2000.0).sqrt();
        assert!(wide.as_slice().iter().all(|&x| x.abs() <= lim + 1e-6));
    }

    #[test]
    fn he_limit() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = he(&mut rng, 600, 10);
        let lim = (6.0f32 / 600.0).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= lim + 1e-6));
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = gaussian(&mut rng, 100, 100, 2.0);
        let n = m.len() as f32;
        let mean: f32 = m.as_slice().iter().sum::<f32>() / n;
        let var: f32 = m
            .as_slice()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / n;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.4, "var {var}");
    }

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = uniform(&mut StdRng::seed_from_u64(9), 4, 4, 1.0);
        let b = uniform(&mut StdRng::seed_from_u64(9), 4, 4, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn standard_normal_is_finite() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            assert!(standard_normal(&mut rng).is_finite());
        }
    }
}
