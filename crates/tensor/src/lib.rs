//! # ecad-tensor
//!
//! Dense linear-algebra substrate for the ECAD co-design flow.
//!
//! The paper's MLP workloads reduce to general matrix multiplication
//! (GEMM); production deployments call a vendor BLAS. This crate is the
//! BLAS stand-in: a row-major [`Matrix`] type over `f32`, a cache-blocked
//! GEMM kernel, and the small vector routines (bias broadcast, softmax,
//! reductions) needed by the MLP trainer and the classical baselines.
//!
//! Everything is deterministic given a seeded RNG, which the evolutionary
//! engine relies on for reproducible searches.
//!
//! ## Example
//!
//! ```
//! use ecad_tensor::{Matrix, gemm};
//!
//! let a = Matrix::from_rows(&[[1.0, 2.0], [3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = gemm::matmul(&a, &b);
//! assert_eq!(c, a);
//! ```

#![warn(missing_docs)]

mod error;
mod matrix;

pub mod gemm;
pub mod init;
pub mod ops;
pub mod stats;

pub use error::ShapeError;
pub use matrix::Matrix;
