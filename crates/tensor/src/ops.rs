//! Row-wise and vector operations used by the MLP trainer and baselines.

use crate::Matrix;

/// Row-wise softmax with the max-subtraction trick for numerical stability.
///
/// Each row of the result sums to 1 (up to rounding) and contains only
/// finite values even for large logits.
///
/// # Example
///
/// ```
/// use ecad_tensor::{Matrix, ops};
/// let logits = Matrix::from_rows(&[[1.0, 1.0]]);
/// let p = ops::softmax_rows(&logits);
/// assert!((p[(0, 0)] - 0.5).abs() < 1e-6);
/// ```
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for x in row.iter_mut() {
            *x = (*x - max).exp();
            sum += *x;
        }
        if sum > 0.0 {
            for x in row.iter_mut() {
                *x /= sum;
            }
        }
    }
    out
}

/// Sums each column into a vector of length `m.cols()`.
///
/// Used for bias gradients (`db = sum_rows(dY)`).
pub fn col_sums(m: &Matrix) -> Vec<f32> {
    let mut sums = vec![0.0f32; m.cols()];
    for row in m.iter_rows() {
        for (s, &v) in sums.iter_mut().zip(row) {
            *s += v;
        }
    }
    sums
}

/// Mean of each column.
pub fn col_means(m: &Matrix) -> Vec<f32> {
    let mut s = col_sums(m);
    let n = m.rows().max(1) as f32;
    for v in &mut s {
        *v /= n;
    }
    s
}

/// Population standard deviation of each column (ddof = 0).
///
/// Columns with zero variance report a standard deviation of 0; callers
/// that scale by this value should guard against division by zero (the
/// dataset scaler substitutes 1.0).
pub fn col_stds(m: &Matrix) -> Vec<f32> {
    let means = col_means(m);
    let mut acc = vec![0.0f32; m.cols()];
    for row in m.iter_rows() {
        for ((a, &v), &mu) in acc.iter_mut().zip(row).zip(&means) {
            let d = v - mu;
            *a += d * d;
        }
    }
    let n = m.rows().max(1) as f32;
    for a in &mut acc {
        *a = (*a / n).sqrt();
    }
    acc
}

/// Mean cross-entropy between softmax probabilities and one-hot targets.
///
/// `probs` and `targets` must have identical shapes; `targets` rows are
/// expected to be one-hot (or a probability distribution). Probabilities
/// are clamped away from zero so the loss stays finite.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn cross_entropy(probs: &Matrix, targets: &Matrix) -> f32 {
    assert_eq!(
        probs.shape(),
        targets.shape(),
        "cross_entropy shape mismatch"
    );
    let mut loss = 0.0f64;
    for (p, t) in probs.as_slice().iter().zip(targets.as_slice()) {
        if *t > 0.0 {
            loss -= (*t as f64) * (p.max(1e-12) as f64).ln();
        }
    }
    (loss / probs.rows().max(1) as f64) as f32
}

/// Fraction of rows where the argmax of `probs` equals the label.
///
/// # Panics
///
/// Panics if `labels.len() != probs.rows()`.
pub fn accuracy(probs: &Matrix, labels: &[usize]) -> f32 {
    assert_eq!(labels.len(), probs.rows(), "labels/rows mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let preds = probs.argmax_rows();
    let hits = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    hits as f32 / labels.len() as f32
}

/// Builds a one-hot matrix with `classes` columns from integer labels.
///
/// # Panics
///
/// Panics if any label is `>= classes`.
pub fn one_hot(labels: &[usize], classes: usize) -> Matrix {
    let mut m = Matrix::zeros(labels.len(), classes);
    for (r, &l) in labels.iter().enumerate() {
        assert!(l < classes, "label {l} out of range for {classes} classes");
        m[(r, l)] = 1.0;
    }
    m
}

/// Euclidean (L2) distance between two equal-length slices.
pub fn euclidean(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    x.iter()
        .zip(y)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f32>()
        .sqrt()
}

/// Clips every element of `m` into `[-limit, limit]` in place.
///
/// Gradient clipping keeps the evolutionary search robust against
/// candidates whose topology makes training unstable.
pub fn clip_inplace(m: &mut Matrix, limit: f32) {
    m.map_inplace(|x| x.clamp(-limit, limit));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let m = Matrix::from_rows(&[[1.0, 2.0, 3.0], [-5.0, 0.0, 5.0]]);
        let p = softmax_rows(&m);
        for r in 0..p.rows() {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_is_stable_for_huge_logits() {
        let m = Matrix::from_rows(&[[1e30, 1e30 - 1.0]]);
        let p = softmax_rows(&m);
        assert!(p.all_finite());
    }

    #[test]
    fn softmax_orders_match_logits() {
        let m = Matrix::from_rows(&[[0.1, 3.0, -1.0]]);
        let p = softmax_rows(&m);
        assert_eq!(p.argmax_rows(), vec![1]);
    }

    #[test]
    fn col_sums_means_stds() {
        let m = Matrix::from_rows(&[[1.0, 10.0], [3.0, 10.0]]);
        assert_eq!(col_sums(&m), vec![4.0, 20.0]);
        assert_eq!(col_means(&m), vec![2.0, 10.0]);
        let s = col_stds(&m);
        assert!((s[0] - 1.0).abs() < 1e-6);
        assert_eq!(s[1], 0.0);
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_near_zero() {
        let probs = Matrix::from_rows(&[[1.0, 0.0]]);
        let targets = Matrix::from_rows(&[[1.0, 0.0]]);
        assert!(cross_entropy(&probs, &targets) < 1e-6);
    }

    #[test]
    fn cross_entropy_wrong_confident_prediction_is_large() {
        let probs = Matrix::from_rows(&[[1e-9, 1.0]]);
        let targets = Matrix::from_rows(&[[1.0, 0.0]]);
        assert!(cross_entropy(&probs, &targets) > 10.0);
    }

    #[test]
    fn cross_entropy_finite_even_for_zero_prob() {
        let probs = Matrix::from_rows(&[[0.0, 1.0]]);
        let targets = Matrix::from_rows(&[[1.0, 0.0]]);
        assert!(cross_entropy(&probs, &targets).is_finite());
    }

    #[test]
    fn accuracy_counts_hits() {
        let probs = Matrix::from_rows(&[[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]]);
        assert!((accuracy(&probs, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn accuracy_empty_is_zero() {
        let probs = Matrix::zeros(0, 3);
        assert_eq!(accuracy(&probs, &[]), 0.0);
    }

    #[test]
    fn one_hot_round_trips_through_argmax() {
        let labels = vec![2usize, 0, 1, 2];
        let m = one_hot(&labels, 3);
        assert_eq!(m.argmax_rows(), labels);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn one_hot_rejects_out_of_range() {
        let _ = one_hot(&[3], 3);
    }

    #[test]
    fn euclidean_matches_hand_calc() {
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn clip_bounds_values() {
        let mut m = Matrix::from_rows(&[[-10.0, 0.5, 10.0]]);
        clip_inplace(&mut m, 1.0);
        assert_eq!(m.row(0), &[-1.0, 0.5, 1.0]);
    }
}
