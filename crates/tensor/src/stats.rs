//! Small statistics helpers shared by the experiment harness.
//!
//! Experiments summarize populations of candidates (accuracy, throughput,
//! efficiency); the helpers here compute the descriptive statistics the
//! paper reports — means, percentiles, and simple correlation — without
//! pulling in a stats crate.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f32>() / xs.len() as f32
}

/// Population standard deviation; 0.0 for fewer than two elements.
pub fn std_dev(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let mu = mean(xs);
    (xs.iter().map(|&x| (x - mu) * (x - mu)).sum::<f32>() / xs.len() as f32).sqrt()
}

/// Minimum; `None` for an empty slice.
pub fn min(xs: &[f32]) -> Option<f32> {
    xs.iter().copied().reduce(f32::min)
}

/// Maximum; `None` for an empty slice.
pub fn max(xs: &[f32]) -> Option<f32> {
    xs.iter().copied().reduce(f32::max)
}

/// Percentile in `[0, 100]` using linear interpolation between ranks.
///
/// Returns `None` for an empty slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or any value is NaN.
pub fn percentile(xs: &[f32], p: f32) -> Option<f32> {
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if xs.is_empty() {
        return None;
    }
    let mut v: Vec<f32> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = p / 100.0 * (v.len() - 1) as f32;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f32;
    Some(v[lo] * (1.0 - frac) + v[hi] * frac)
}

/// Median (the 50th percentile).
pub fn median(xs: &[f32]) -> Option<f32> {
    percentile(xs, 50.0)
}

/// Pearson correlation coefficient of two equal-length series.
///
/// Returns `None` if the series are shorter than 2 or either has zero
/// variance. The paper correlates accuracy against throughput and network
/// size against accuracy; this is the statistic behind those claims.
///
/// # Panics
///
/// Panics if the series differ in length.
pub fn pearson(xs: &[f32], ys: &[f32]) -> Option<f32> {
    assert_eq!(xs.len(), ys.len(), "pearson requires equal lengths");
    if xs.len() < 2 {
        return None;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx.sqrt() * syy.sqrt()))
}

/// Summary of a sample: count, mean, standard deviation, min, max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f32,
    /// Population standard deviation.
    pub std_dev: f32,
    /// Smallest observation (0.0 when empty).
    pub min: f32,
    /// Largest observation (0.0 when empty).
    pub max: f32,
}

impl Summary {
    /// Computes a summary of `xs`.
    pub fn of(xs: &[f32]) -> Self {
        Self {
            count: xs.len(),
            mean: mean(xs),
            std_dev: std_dev(xs),
            min: min(xs).unwrap_or(0.0),
            max: max(xs).unwrap_or(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-6);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn empty_slices() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(min(&[]), None);
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(pearson(&[], &[]), None);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(4.0));
        assert!((percentile(&xs, 50.0).unwrap() - 2.5).abs() < 1e-6);
    }

    #[test]
    fn median_odd_length() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
    }

    #[test]
    fn pearson_perfect_correlations() {
        let xs = [1.0, 2.0, 3.0];
        let pos = [10.0, 20.0, 30.0];
        let neg = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &pos).unwrap() - 1.0).abs() < 1e-6);
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-6);
    }

    #[test]
    fn pearson_zero_variance_is_none() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), None);
    }

    #[test]
    fn summary_of_sample() {
        let s = Summary::of(&[1.0, 3.0]);
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
    }
}
