//! General matrix multiplication kernels.
//!
//! Two implementations are provided:
//!
//! * [`matmul_naive`] — the textbook triple loop, kept as a correctness
//!   reference for tests and property checks.
//! * [`matmul`] — a cache-blocked kernel with a packed, transposed copy of
//!   the right-hand operand so the inner loop is a contiguous dot product.
//!   This is the kernel the MLP trainer uses.
//!
//! Both compute `C = A * B` for row-major operands. Fused variants
//! ([`matmul_bias`], [`matmul_at_b`], [`matmul_a_bt`]) cover the shapes
//! backpropagation needs without materializing transposes at call sites.

use crate::Matrix;

/// Tile edge (in elements) for the blocked kernel. 64 keeps three f32
/// tiles of 64x64 (48 KiB) within a typical L1+L2 footprint.
const BLOCK: usize = 64;

/// Multiplies `a * b` with the textbook triple loop.
///
/// This is the correctness oracle for [`matmul`]; prefer [`matmul`] in
/// real code.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul_naive: inner dimensions differ ({} vs {})",
        a.cols(),
        b.rows()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for p in 0..k {
            let aip = a[(i, p)];
            if aip == 0.0 {
                continue;
            }
            let brow = b.row(p);
            let crow = c.row_mut(i);
            for j in 0..n {
                crow[j] += aip * brow[j];
            }
        }
    }
    c
}

/// Multiplies `a * b` with the cache-blocked production kernel.
///
/// `b` is packed column-major (i.e. transposed) into tiles so that the
/// innermost loop is a dot product over two contiguous slices, which the
/// compiler auto-vectorizes.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
///
/// # Example
///
/// ```
/// use ecad_tensor::{Matrix, gemm};
/// let a = Matrix::from_rows(&[[1.0, 2.0, 3.0]]);
/// let b = Matrix::from_rows(&[[1.0], [1.0], [1.0]]);
/// assert_eq!(gemm::matmul(&a, &b)[(0, 0)], 6.0);
/// ```
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let _prof = rt::prof_span!("gemm");
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimensions differ ({} vs {})",
        a.cols(),
        b.rows()
    );
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    if m == 0 || n == 0 || k == 0 {
        return c;
    }

    // Pack B transposed: bt[j * k + p] = b[p, j]. One pass, then every
    // (i, j) output is dot(a.row(i), bt_col(j)) over contiguous memory.
    let mut bt = vec![0.0f32; n * k];
    for p in 0..k {
        let brow = b.row(p);
        for (j, &v) in brow.iter().enumerate() {
            bt[j * k + p] = v;
        }
    }

    for i0 in (0..m).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(m);
        for j0 in (0..n).step_by(BLOCK) {
            let j1 = (j0 + BLOCK).min(n);
            for i in i0..i1 {
                let arow = a.row(i);
                let crow = c.row_mut(i);
                #[allow(clippy::needless_range_loop)] // index math mirrors the tiling
                for j in j0..j1 {
                    let bcol = &bt[j * k..(j + 1) * k];
                    crow[j] = dot(arow, bcol);
                }
            }
        }
    }
    c
}

/// Computes `a * b + bias` where `bias` is a length-`n` vector broadcast
/// across rows — the fused layer-forward kernel.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()` or `bias.len() != b.cols()`.
pub fn matmul_bias(a: &Matrix, b: &Matrix, bias: &[f32]) -> Matrix {
    assert_eq!(bias.len(), b.cols(), "bias length must equal output width");
    let mut c = matmul(a, b);
    for r in 0..c.rows() {
        let row = c.row_mut(r);
        for (x, &bv) in row.iter_mut().zip(bias) {
            *x += bv;
        }
    }
    c
}

/// Computes `a^T * b` without materializing `a^T`.
///
/// Backpropagation uses this shape for weight gradients
/// (`dW = X^T * dY`).
///
/// # Panics
///
/// Panics if `a.rows() != b.rows()`.
pub fn matmul_at_b(a: &Matrix, b: &Matrix) -> Matrix {
    let _prof = rt::prof_span!("gemm_at_b");
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_at_b: row counts differ ({} vs {})",
        a.rows(),
        b.rows()
    );
    let (k, m) = a.shape(); // result is m x n
    let n = b.cols();
    let mut c = Matrix::zeros(m, n);
    for p in 0..k {
        let arow = a.row(p);
        let brow = b.row(p);
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let crow = c.row_mut(i);
            for (j, &bv) in brow.iter().enumerate() {
                crow[j] += av * bv;
            }
        }
    }
    c
}

/// Computes `a * b^T` without materializing `b^T`.
///
/// Backpropagation uses this shape to push deltas through a layer
/// (`dX = dY * W^T`).
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()`.
pub fn matmul_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
    let _prof = rt::prof_span!("gemm_a_bt");
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_a_bt: column counts differ ({} vs {})",
        a.cols(),
        b.cols()
    );
    let m = a.rows();
    let n = b.rows();
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        for (j, cv) in crow.iter_mut().enumerate().take(n) {
            *cv = dot(arow, b.row(j));
        }
    }
    c
}

/// Dot product of two equal-length slices.
///
/// Written with a 4-way unrolled accumulator so LLVM vectorizes it; this
/// is the hot inner loop of every kernel above.
///
/// # Panics
///
/// Panics (via `debug_assert`) in debug builds if lengths differ; in
/// release builds the shorter length wins.
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = [0.0f32; 4];
    let chunks = x.len() / 4;
    for c in 0..chunks {
        let xb = &x[c * 4..c * 4 + 4];
        let yb = &y[c * 4..c * 4 + 4];
        acc[0] += xb[0] * yb[0];
        acc[1] += xb[1] * yb[1];
        acc[2] += xb[2] * yb[2];
        acc[3] += xb[3] * yb[3];
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..x.len().min(y.len()) {
        s += x[i] * y[i];
    }
    s
}

/// Number of floating-point operations a GEMM of these dimensions performs
/// (the conventional `2 * m * k * n` count used throughout the paper's
/// roofline math).
pub fn gemm_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * m as u64 * k as u64 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use rt::rand::rngs::StdRng;
    use rt::rand::SeedableRng;

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "{x} vs {y}"
            );
        }
    }

    #[test]
    fn naive_identity() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        let i = Matrix::identity(3);
        assert_eq!(matmul_naive(&a, &i), a);
        assert_eq!(matmul_naive(&i, &a), a);
    }

    #[test]
    fn blocked_matches_naive_small() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = init::uniform(&mut rng, 5, 7, 1.0);
        let b = init::uniform(&mut rng, 7, 3, 1.0);
        assert_close(&matmul(&a, &b), &matmul_naive(&a, &b), 1e-5);
    }

    #[test]
    fn blocked_matches_naive_cross_block_boundary() {
        let mut rng = StdRng::seed_from_u64(11);
        // Shapes straddle the 64-wide tile boundary.
        let a = init::uniform(&mut rng, 65, 130, 1.0);
        let b = init::uniform(&mut rng, 130, 67, 1.0);
        assert_close(&matmul(&a, &b), &matmul_naive(&a, &b), 1e-4);
    }

    #[test]
    fn empty_dims_yield_zero_matrix() {
        let a = Matrix::zeros(0, 4);
        let b = Matrix::zeros(4, 3);
        assert_eq!(matmul(&a, &b).shape(), (0, 3));
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 3);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (2, 3));
        assert!(c.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn dim_mismatch_panics() {
        let _ = matmul(&Matrix::zeros(2, 3), &Matrix::zeros(4, 2));
    }

    #[test]
    fn bias_broadcasts_per_row() {
        let a = Matrix::identity(2);
        let b = Matrix::from_rows(&[[1.0, 2.0], [3.0, 4.0]]);
        let c = matmul_bias(&a, &b, &[10.0, 20.0]);
        assert_eq!(c.row(0), &[11.0, 22.0]);
        assert_eq!(c.row(1), &[13.0, 24.0]);
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = init::uniform(&mut rng, 6, 4, 1.0);
        let b = init::uniform(&mut rng, 6, 5, 1.0);
        assert_close(
            &matmul_at_b(&a, &b),
            &matmul_naive(&a.transposed(), &b),
            1e-5,
        );
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = init::uniform(&mut rng, 6, 4, 1.0);
        let b = init::uniform(&mut rng, 5, 4, 1.0);
        assert_close(
            &matmul_a_bt(&a, &b),
            &matmul_naive(&a, &b.transposed()),
            1e-5,
        );
    }

    #[test]
    fn dot_handles_remainder_lengths() {
        for n in 0..10 {
            let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let y = vec![2.0f32; n];
            let expect: f32 = x.iter().sum::<f32>() * 2.0;
            assert!((dot(&x, &y) - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn flops_count() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
        assert_eq!(gemm_flops(0, 3, 4), 0);
    }
}
