use std::fmt;
use std::ops::{Index, IndexMut};


use crate::ShapeError;

/// A dense, row-major matrix of `f32` values.
///
/// `Matrix` is the common currency between the dataset loaders, the MLP
/// trainer, the classical baselines and the hardware models. It is a plain
/// data structure: storage is a single contiguous `Vec<f32>` with row
/// stride equal to the column count, so a row is always a contiguous
/// slice — the layout the blocked GEMM kernel in [`crate::gemm`] expects.
///
/// # Example
///
/// ```
/// use ecad_tensor::Matrix;
///
/// let mut m = Matrix::zeros(2, 3);
/// m[(0, 1)] = 5.0;
/// assert_eq!(m.row(0), &[0.0, 5.0, 0.0]);
/// assert_eq!(m.shape(), (2, 3));
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a closure mapping `(row, col)` to a value.
    ///
    /// ```
    /// use ecad_tensor::Matrix;
    /// let m = Matrix::from_fn(2, 2, |r, c| (r * 2 + c) as f32);
    /// assert_eq!(m.row(1), &[2.0, 3.0]);
    /// ```
    pub fn from_fn<F: FnMut(usize, usize) -> f32>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from an iterator of equally-sized rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths or no rows are provided.
    pub fn from_rows<R: AsRef<[f32]>>(rows: &[R]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].as_ref().len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            let r = r.as_ref();
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the backing row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the backing row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the backing storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrows row `r` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(
            r < self.rows,
            "row {} out of bounds ({} rows)",
            r,
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(
            r < self.rows,
            "row {} out of bounds ({} rows)",
            r,
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(
            c < self.cols,
            "col {} out of bounds ({} cols)",
            c,
            self.cols
        );
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Iterates over rows as contiguous slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns the transpose as a new matrix.
    pub fn transposed(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Applies `f` elementwise, returning a new matrix.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise sum, returning a new matrix.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if shapes differ.
    pub fn add(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Elementwise difference, returning a new matrix.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if shapes differ.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Elementwise (Hadamard) product, returning a new matrix.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if shapes differ.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix, ShapeError> {
        self.zip_with(other, "hadamard", |a, b| a * b)
    }

    /// Combines two equally-shaped matrices elementwise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if shapes differ.
    pub fn zip_with<F: Fn(f32, f32) -> f32>(
        &self,
        other: &Matrix,
        op: &'static str,
        f: F,
    ) -> Result<Matrix, ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new(op, self.shape(), other.shape()));
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_inplace(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Adds `alpha * other` to `self` in place (matrix AXPY).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if shapes differ.
    pub fn axpy_inplace(&mut self, alpha: f32, other: &Matrix) -> Result<(), ShapeError> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new("axpy", self.shape(), other.shape()));
        }
        for (x, &y) in self.data.iter_mut().zip(&other.data) {
            *x += alpha * y;
        }
        Ok(())
    }

    /// Returns a new matrix containing the selected rows, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Index of the maximum element in each row (ties resolve to the first).
    ///
    /// Used to turn softmax outputs into class predictions.
    pub fn argmax_rows(&self) -> Vec<usize> {
        self.iter_rows()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                        if v > bv {
                            (i, v)
                        } else {
                            (bi, bv)
                        }
                    })
                    .0
            })
            .collect()
    }

    /// Frobenius norm (square root of the sum of squared elements).
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Whether every element is finite (no NaN / infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for (i, row) in self.iter_rows().take(max_rows).enumerate() {
            write!(f, "  [")?;
            for (j, v) in row.iter().take(8).enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v:.4}")?;
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]{}", if i + 1 < self.rows { "," } else { "" })?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_diagonal() {
        let m = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(m[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_fn_row_major_order() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_wrong_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn row_and_col_access() {
        let m = Matrix::from_rows(&[[1.0, 2.0], [3.0, 4.0]]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(m.transposed().transposed(), m);
        assert_eq!(m.transposed().shape(), (5, 3));
        assert_eq!(m.transposed()[(4, 2)], m[(2, 4)]);
    }

    #[test]
    fn add_sub_hadamard() {
        let a = Matrix::from_rows(&[[1.0, 2.0], [3.0, 4.0]]);
        let b = Matrix::filled(2, 2, 2.0);
        assert_eq!(a.add(&b).unwrap().row(0), &[3.0, 4.0]);
        assert_eq!(a.sub(&b).unwrap().row(1), &[1.0, 2.0]);
        assert_eq!(a.hadamard(&b).unwrap().row(0), &[2.0, 4.0]);
    }

    #[test]
    fn shape_mismatch_is_error_not_panic() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        let err = a.add(&b).unwrap_err();
        assert_eq!(err.lhs(), (2, 2));
        assert_eq!(err.rhs(), (2, 3));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 3.0);
        a.axpy_inplace(2.0, &b).unwrap();
        assert!(a.as_slice().iter().all(|&x| x == 7.0));
    }

    #[test]
    fn select_rows_copies_in_order() {
        let m = Matrix::from_rows(&[[0.0], [1.0], [2.0], [3.0]]);
        let s = m.select_rows(&[3, 1]);
        assert_eq!(s.as_slice(), &[3.0, 1.0]);
    }

    #[test]
    fn argmax_rows_first_tie_wins() {
        let m = Matrix::from_rows(&[[0.1, 0.9, 0.9], [2.0, 1.0, 0.0]]);
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn frobenius_norm_matches_hand_calc() {
        let m = Matrix::from_rows(&[[3.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut m = Matrix::zeros(2, 2);
        assert!(m.all_finite());
        m[(1, 1)] = f32::NAN;
        assert!(!m.all_finite());
    }

    #[test]
    fn map_and_scale() {
        let mut m = Matrix::filled(2, 2, 2.0);
        let doubled = m.map(|x| x * 2.0);
        assert!(doubled.as_slice().iter().all(|&x| x == 4.0));
        m.scale_inplace(0.5);
        assert!(m.as_slice().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn debug_is_nonempty() {
        let m = Matrix::zeros(1, 1);
        assert!(!format!("{m:?}").is_empty());
    }

    #[test]
    fn clone_round_trip() {
        // The workspace carries no serde; persistence goes through the
        // in-repo `rt::json` (see crates/rt). At this layer we only need
        // value semantics: Clone must preserve equality.
        let m = Matrix::from_fn(2, 2, |r, c| (r + c) as f32);
        assert_eq!(m.clone(), m);
    }
}
