//! Algebraic property tests for the tensor substrate, on `rt::check`.

use ecad_tensor::{gemm, init, ops, Matrix};
use rt::rand::rngs::StdRng;
use rt::rand::SeedableRng;
use rt::{prop_assert, prop_assert_eq};

fn close(a: f32, b: f32, tol: f32) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

fn matrices(m: usize, k: usize, n: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
    let mut rng = StdRng::seed_from_u64(seed);
    (
        init::uniform(&mut rng, m, k, 1.0),
        init::uniform(&mut rng, k, n, 1.0),
        init::uniform(&mut rng, k, n, 1.0),
    )
}

rt::prop! {
    #![cases(64)]

    /// Right-distributivity: A(B + C) = AB + AC.
    fn matmul_distributes_over_addition(
        m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in 0u64..500
    ) {
        let (a, b, c) = matrices(m, k, n, seed);
        let lhs = gemm::matmul(&a, &b.add(&c).unwrap());
        let rhs = gemm::matmul(&a, &b).add(&gemm::matmul(&a, &c)).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!(close(*x, *y, 1e-4), "{x} vs {y}");
        }
    }

    /// Scalar pull-through: (sA)B = s(AB).
    fn matmul_commutes_with_scaling(
        m in 1usize..10, k in 1usize..10, n in 1usize..10, seed in 0u64..500, s in -3.0f32..3.0
    ) {
        let (a, b, _) = matrices(m, k, n, seed);
        let mut sa = a.clone();
        sa.scale_inplace(s);
        let lhs = gemm::matmul(&sa, &b);
        let mut rhs = gemm::matmul(&a, &b);
        rhs.scale_inplace(s);
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!(close(*x, *y, 1e-4), "{x} vs {y}");
        }
    }

    /// Identity is neutral on both sides.
    fn identity_is_neutral(m in 1usize..12, n in 1usize..12, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = init::uniform(&mut rng, m, n, 5.0);
        prop_assert_eq!(gemm::matmul(&Matrix::identity(m), &a), a.clone());
        prop_assert_eq!(gemm::matmul(&a, &Matrix::identity(n)), a);
    }

    /// Softmax is invariant under per-row constant shifts.
    fn softmax_shift_invariance(
        rows in 1usize..6, cols in 1usize..6, shift in -50.0f32..50.0, seed in 0u64..200
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let logits = init::uniform(&mut rng, rows, cols, 4.0);
        let shifted = logits.map(|x| x + shift);
        let p1 = ops::softmax_rows(&logits);
        let p2 = ops::softmax_rows(&shifted);
        for (x, y) in p1.as_slice().iter().zip(p2.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    /// col_sums is linear: sums(A + B) = sums(A) + sums(B).
    fn col_sums_linear(rows in 1usize..10, cols in 1usize..10, seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = init::uniform(&mut rng, rows, cols, 2.0);
        let b = init::uniform(&mut rng, rows, cols, 2.0);
        let lhs = ops::col_sums(&a.add(&b).unwrap());
        let rhs: Vec<f32> = ops::col_sums(&a)
            .iter()
            .zip(ops::col_sums(&b))
            .map(|(x, y)| x + y)
            .collect();
        for (x, y) in lhs.iter().zip(&rhs) {
            prop_assert!(close(*x, *y, 1e-4));
        }
    }

    /// select_rows of all indices is the identity; of reversed indices,
    /// a double reverse round-trips.
    fn select_rows_permutation(rows in 1usize..12, cols in 1usize..6, seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = init::uniform(&mut rng, rows, cols, 1.0);
        let all: Vec<usize> = (0..rows).collect();
        prop_assert_eq!(a.select_rows(&all), a.clone());
        let rev: Vec<usize> = (0..rows).rev().collect();
        prop_assert_eq!(a.select_rows(&rev).select_rows(&rev), a);
    }

    /// Frobenius norm: homogeneous under scaling and zero only at zero.
    fn frobenius_homogeneity(
        rows in 1usize..8, cols in 1usize..8, s in -4.0f32..4.0, seed in 0u64..100
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = init::uniform(&mut rng, rows, cols, 1.0);
        let mut sa = a.clone();
        sa.scale_inplace(s);
        prop_assert!(close(sa.frobenius_norm(), s.abs() * a.frobenius_norm(), 1e-4));
    }

    /// Accuracy is a fraction of matches and invariant to adding a
    /// constant to all logits.
    fn accuracy_bounds(rows in 1usize..20, classes in 2usize..6, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let logits = init::uniform(&mut rng, rows, classes, 3.0);
        let labels: Vec<usize> = (0..rows).map(|i| i % classes).collect();
        let acc = ops::accuracy(&logits, &labels);
        prop_assert!((0.0..=1.0).contains(&acc));
        let shifted = logits.map(|x| x + 7.5);
        prop_assert_eq!(ops::accuracy(&shifted, &labels), acc);
    }

    /// Statistics sanity: percentile bounds and mean within [min, max].
    fn stats_bounds(xs in rt::check::vec(-100.0f32..100.0, 1..50)) {
        use ecad_tensor::stats;
        let mn = stats::min(&xs).unwrap();
        let mx = stats::max(&xs).unwrap();
        let mean = stats::mean(&xs);
        prop_assert!(mn - 1e-3 <= mean && mean <= mx + 1e-3);
        let med = stats::median(&xs).unwrap();
        prop_assert!(mn <= med && med <= mx);
        for p in [0.0f32, 25.0, 50.0, 75.0, 100.0] {
            let v = stats::percentile(&xs, p).unwrap();
            prop_assert!(mn <= v && v <= mx);
        }
    }
}
