//! GPU device catalog (§IV): Quadro M5000, Titan X, Radeon VII.


/// A GPU device's roofline attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuDevice {
    /// Marketing name.
    pub name: String,
    /// Peak FP32 throughput in TFLOP/s.
    pub peak_tflops: f64,
    /// Peak memory bandwidth in GB/s.
    pub mem_gb_per_s: f64,
    /// Fixed per-kernel launch/dispatch overhead in seconds. This is
    /// the *framework* overhead — the paper profiles GPUs through
    /// TensorFlow trace files, and TF op dispatch costs tens of
    /// microseconds per kernel, which dominates small-MLP layers and is
    /// why GPU throughput in the paper is nearly flat across equally
    /// sized networks (Fig 2b).
    pub kernel_overhead_s: f64,
    /// Output elements needed in flight to reach full occupancy; small
    /// MLP layers sit far below this, which is why "the effective
    /// performance was rather low" (§IV) on GPUs.
    pub full_occupancy_outputs: f64,
    /// Board power in watts (for reporting only; see §IV's note that
    /// FPGA chip power and GPU board power are not directly comparable).
    pub board_power_w: f64,
}

impl GpuDevice {
    /// NVIDIA Quadro M5000: 4.3 TFLOP/s FP32, 211 GB/s, 150 W.
    pub fn quadro_m5000() -> Self {
        Self {
            name: "Quadro M5000".to_string(),
            peak_tflops: 4.3,
            mem_gb_per_s: 211.0,
            kernel_overhead_s: 45e-6,
            full_occupancy_outputs: 131_072.0,
            board_power_w: 150.0,
        }
    }

    /// NVIDIA Titan X: 12 TFLOP/s FP32, 480 GB/s, 250 W.
    pub fn titan_x() -> Self {
        Self {
            name: "Titan X".to_string(),
            peak_tflops: 12.0,
            mem_gb_per_s: 480.0,
            kernel_overhead_s: 40e-6,
            full_occupancy_outputs: 262_144.0,
            board_power_w: 250.0,
        }
    }

    /// AMD Radeon VII: 13.44 TFLOP/s FP32, 1 TB/s HBM2, 295 W.
    pub fn radeon_vii() -> Self {
        Self {
            name: "Radeon VII".to_string(),
            peak_tflops: 13.44,
            mem_gb_per_s: 1024.0,
            kernel_overhead_s: 45e-6,
            full_occupancy_outputs: 262_144.0,
            board_power_w: 295.0,
        }
    }

    /// Peak FP32 throughput in FLOP/s.
    pub fn peak_flops(&self) -> f64 {
        self.peak_tflops * 1e12
    }

    /// Peak memory bandwidth in bytes/s.
    pub fn mem_bytes_per_s(&self) -> f64 {
        self.mem_gb_per_s * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_paper_numbers() {
        assert_eq!(GpuDevice::quadro_m5000().peak_tflops, 4.3);
        assert_eq!(GpuDevice::quadro_m5000().mem_gb_per_s, 211.0);
        assert_eq!(GpuDevice::titan_x().peak_tflops, 12.0);
        assert_eq!(GpuDevice::radeon_vii().peak_tflops, 13.44);
        assert_eq!(GpuDevice::radeon_vii().mem_gb_per_s, 1024.0);
    }

    #[test]
    fn unit_conversions() {
        let d = GpuDevice::titan_x();
        assert_eq!(d.peak_flops(), 12e12);
        assert_eq!(d.mem_bytes_per_s(), 480e9);
    }
}
