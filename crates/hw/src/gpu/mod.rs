//! GPU comparator models: device catalog and the per-kernel roofline
//! timing model matching the paper's TensorFlow-trace methodology.

mod device;
mod model;

pub use device::GpuDevice;
pub use model::{GpuModel, GpuPerf};
