//! Per-kernel GPU timing model.
//!
//! The paper profiles GPUs from TensorFlow trace files: "The timing
//! report considers matrix multiplication, activation, and vector
//! addition routines, but it does not appear to take into account DRAM
//! transfers" (§IV). The model mirrors that accounting:
//!
//! * each layer issues three kernels — GEMM, bias add, activation;
//! * the GEMM kernel runs at `min(compute roofline, memory roofline)`
//!   where the compute roofline is scaled by an occupancy factor
//!   (`m·n / full_occupancy_outputs`, capped at 1) — small MLP layers
//!   cannot fill thousands of cores, which is the mechanism behind the
//!   paper's 0.3% GPU-efficiency observation (§IV-D);
//! * bias/activation kernels are bandwidth-bound elementwise passes;
//! * every kernel pays the fixed launch overhead;
//! * host↔device DRAM transfers are *not* charged, matching the paper's
//!   note (and its caveat that this skews comparisons in the GPU's
//!   favor).


use crate::{total_flops, F32_BYTES};

use super::GpuDevice;

/// Aggregate GPU timing result for one candidate MLP.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuPerf {
    /// Modeled wall time for one batch through all layers, s.
    pub total_time_s: f64,
    /// Classification results per second (`batch / total_time`).
    pub outputs_per_s: f64,
    /// Achieved GFLOP/s over the whole run.
    pub effective_gflops: f64,
    /// `effective / device peak` — the paper's GPU-efficiency metric
    /// ("the number of operations per second obtained from a run out of
    /// the total potential operations per second of the device").
    pub efficiency: f64,
    /// Time until the first batch's results are available (one run), s.
    pub latency_s: f64,
    /// Number of kernels launched.
    pub kernels: usize,
}

/// The GPU analytical timing model for one device.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuModel {
    device: GpuDevice,
}

impl GpuModel {
    /// Creates a model for `device`.
    pub fn new(device: GpuDevice) -> Self {
        Self { device }
    }

    /// The device this model times against.
    pub fn device(&self) -> &GpuDevice {
        &self.device
    }

    /// Times the GEMM layer sequence `layers` (shapes `(m, k, n)`).
    ///
    /// `with_bias[i]` selects whether layer `i` launches a bias-add
    /// kernel; an activation kernel is charged for every layer (the
    /// output softmax counts as one).
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty, `with_bias` is not the same length,
    /// or any dimension is zero.
    pub fn evaluate(&self, layers: &[(usize, usize, usize)], with_bias: &[bool]) -> GpuPerf {
        assert!(!layers.is_empty(), "an MLP has at least one GEMM layer");
        assert_eq!(
            layers.len(),
            with_bias.len(),
            "bias flags must match layers"
        );
        assert!(
            layers.iter().all(|&(m, k, n)| m > 0 && k > 0 && n > 0),
            "GEMM dimensions must be positive"
        );
        let peak = self.device.peak_flops();
        let bw = self.device.mem_bytes_per_s();
        let launch = self.device.kernel_overhead_s;

        let mut time = 0.0f64;
        let mut kernels = 0usize;
        for (&(m, k, n), &bias) in layers.iter().zip(with_bias) {
            let (m, k, n) = (m as f64, k as f64, n as f64);
            // GEMM kernel.
            let flops = 2.0 * m * k * n;
            let occupancy = (m * n / self.device.full_occupancy_outputs).min(1.0);
            let compute_t = flops / (peak * occupancy.max(1e-4));
            let bytes = F32_BYTES * (m * k + k * n + m * n);
            let mem_t = bytes / bw;
            time += compute_t.max(mem_t) + launch;
            kernels += 1;
            // Bias add: read + write the m x n activation, read the bias.
            if bias {
                let b_bytes = F32_BYTES * (2.0 * m * n + n);
                time += b_bytes / bw + launch;
                kernels += 1;
            }
            // Activation: elementwise read + write.
            let a_bytes = F32_BYTES * 2.0 * m * n;
            time += a_bytes / bw + launch;
            kernels += 1;
        }

        let flops = total_flops(layers);
        let effective = flops / time;
        let batch = layers[0].0 as f64;
        GpuPerf {
            total_time_s: time,
            outputs_per_s: batch / time,
            effective_gflops: effective / 1e9,
            efficiency: (effective / peak).clamp(0.0, 1.0),
            latency_s: time,
            kernels,
        }
    }

    /// Like [`GpuModel::evaluate`], emitting a debug `gpu_model` event
    /// through `obs` with the headline numbers (kernel count,
    /// efficiency) — the paper's 0.3 %-efficiency observation, visible
    /// per candidate.
    pub fn evaluate_observed(
        &self,
        layers: &[(usize, usize, usize)],
        with_bias: &[bool],
        obs: &rt::obs::Obs,
    ) -> GpuPerf {
        let _prof = rt::prof_span!("gpu_model");
        let perf = self.evaluate(layers, with_bias);
        rt::debug!(
            obs,
            "gpu_model",
            device = self.device.name.as_str(),
            kernels = perf.kernels,
            efficiency = perf.efficiency,
        );
        perf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mlp_shapes(batch: usize) -> (Vec<(usize, usize, usize)>, Vec<bool>) {
        (
            vec![(batch, 561, 128), (batch, 128, 64), (batch, 64, 6)],
            vec![true, true, true],
        )
    }

    fn titan() -> GpuModel {
        GpuModel::new(GpuDevice::titan_x())
    }

    #[test]
    fn small_mlp_has_low_efficiency() {
        let (layers, bias) = mlp_shapes(64);
        let perf = titan().evaluate(&layers, &bias);
        // The paper reports ~0.3% GPU efficiency on MLP workloads.
        assert!(perf.efficiency < 0.05, "efficiency {}", perf.efficiency);
    }

    #[test]
    fn batching_raises_throughput() {
        let (l64, b) = mlp_shapes(64);
        let (l1024, _) = mlp_shapes(1024);
        let small = titan().evaluate(&l64, &b);
        let big = titan().evaluate(&l1024, &b);
        assert!(big.outputs_per_s > small.outputs_per_s * 2.0);
    }

    #[test]
    fn throughput_insensitive_to_neuron_distribution() {
        // The paper's Fig 2b observation: same total neurons, different
        // layer split, GPU throughput barely moves (fixed architecture).
        let a = vec![(256, 561, 96), (256, 96, 96), (256, 96, 6)];
        let b = vec![(256, 561, 160), (256, 160, 32), (256, 32, 6)];
        let bias = vec![true, true, true];
        let pa = titan().evaluate(&a, &bias);
        let pb = titan().evaluate(&b, &bias);
        let ratio = pa.outputs_per_s / pb.outputs_per_s;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn kernel_count_includes_bias_only_when_present() {
        let layers = vec![(8, 4, 4), (8, 4, 2)];
        let all_bias = titan().evaluate(&layers, &[true, true]);
        let no_bias = titan().evaluate(&layers, &[false, false]);
        assert_eq!(all_bias.kernels, 6);
        assert_eq!(no_bias.kernels, 4);
        assert!(no_bias.total_time_s < all_bias.total_time_s);
    }

    #[test]
    fn faster_device_wins_on_large_batches() {
        let (layers, bias) = mlp_shapes(4096);
        let m5000 = GpuModel::new(GpuDevice::quadro_m5000()).evaluate(&layers, &bias);
        let tx = titan().evaluate(&layers, &bias);
        assert!(tx.outputs_per_s > m5000.outputs_per_s);
    }

    #[test]
    fn launch_overhead_dominates_tiny_batches() {
        let (layers, bias) = mlp_shapes(1);
        let perf = titan().evaluate(&layers, &bias);
        let overhead = perf.kernels as f64 * titan().device().kernel_overhead_s;
        assert!(overhead / perf.total_time_s > 0.5);
    }

    #[test]
    fn outputs_per_s_in_paper_magnitude_range() {
        // Table IV reports Titan X at 1e5..2.5e6 outputs/s for realistic
        // candidates; a batch-256 HAR MLP should land in that decade.
        let (layers, bias) = mlp_shapes(256);
        let perf = titan().evaluate(&layers, &bias);
        assert!(
            (1e5..5e7).contains(&perf.outputs_per_s),
            "outputs/s {}",
            perf.outputs_per_s
        );
    }

    #[test]
    #[should_panic(expected = "bias flags")]
    fn mismatched_bias_flags_panic() {
        let _ = titan().evaluate(&[(1, 1, 1)], &[]);
    }
}
