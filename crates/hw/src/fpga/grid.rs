//! Systolic-grid configuration — the hardware half of a co-design genome.
//!
//! The paper's overlay (§III-C) is a 2D grid of processing elements with
//! "design space variables that we allow mutations to take place on. The
//! variables are the number of rows and columns, double buffer cache
//! sizes for each dimension, called interleaving, and the vector width
//! of each processing element (PE)."

use std::error::Error;
use std::fmt;


use super::FpgaDevice;

/// Error returned when a grid configuration is structurally invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridError {
    /// A dimension was zero.
    ZeroDimension,
    /// The configuration needs more DSP blocks than the device has.
    TooManyDsps {
        /// DSPs the grid requires.
        needed: u32,
        /// DSPs the device provides.
        available: u32,
    },
    /// The configuration's on-chip buffering exceeds the device's M20Ks.
    TooManyM20ks {
        /// M20K blocks the grid requires.
        needed: u32,
        /// M20K blocks the device provides.
        available: u32,
    },
    /// The configuration's logic estimate exceeds the device's ALMs.
    TooManyAlms {
        /// ALMs the design requires.
        needed: u32,
        /// ALMs the device provides.
        available: u32,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::ZeroDimension => write!(f, "grid dimensions must be positive"),
            GridError::TooManyDsps { needed, available } => {
                write!(f, "grid needs {needed} DSP blocks, device has {available}")
            }
            GridError::TooManyM20ks { needed, available } => {
                write!(f, "grid needs {needed} M20K blocks, device has {available}")
            }
            GridError::TooManyAlms { needed, available } => {
                write!(f, "design needs {needed} ALMs, device has {available}")
            }
        }
    }
}

impl Error for GridError {}

/// A systolic GEMM overlay configuration.
///
/// * `rows × cols` processing elements;
/// * each PE consumes a `vec`-wide dot-product slice per cycle (one
///   hardened FP32 DSP per lane, so the grid uses `rows·cols·vec` DSPs);
/// * `interleave_m` / `interleave_n` are the double-buffer depths that
///   let one loaded tile be reused across that many block rows/columns —
///   the paper's "interleaving".
///
/// The feeder caches stream `CACHE_DEPTH`-deep K-slices of the A and B
/// tiles through M20K-backed double buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridConfig {
    rows: u32,
    cols: u32,
    interleave_m: u32,
    interleave_n: u32,
    vec: u32,
}

impl GridConfig {
    /// Words of K-dimension depth each feeder buffer holds.
    pub const CACHE_DEPTH: u32 = 512;

    /// Creates a grid configuration.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::ZeroDimension`] if any field is zero.
    /// Device-level feasibility (DSP/M20K budget) is checked separately
    /// by [`GridConfig::validate_for`] because the same genome may be
    /// scored against several devices.
    pub fn new(
        rows: u32,
        cols: u32,
        interleave_m: u32,
        interleave_n: u32,
        vec: u32,
    ) -> Result<Self, GridError> {
        if rows == 0 || cols == 0 || interleave_m == 0 || interleave_n == 0 || vec == 0 {
            return Err(GridError::ZeroDimension);
        }
        Ok(Self {
            rows,
            cols,
            interleave_m,
            interleave_n,
            vec,
        })
    }

    /// PE grid rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// PE grid columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Row-dimension interleave (double-buffer depth).
    pub fn interleave_m(&self) -> u32 {
        self.interleave_m
    }

    /// Column-dimension interleave (double-buffer depth).
    pub fn interleave_n(&self) -> u32 {
        self.interleave_n
    }

    /// Vector (dot-product) width of each PE.
    pub fn vec(&self) -> u32 {
        self.vec
    }

    /// DSP blocks consumed: "the utilization of DSPs is the product of
    /// the grid dimensions and vector width" (§III-C).
    pub fn dsps_used(&self) -> u32 {
        self.rows * self.cols * self.vec
    }

    /// Output tile height: rows of C produced per block
    /// (`rows · interleave_m`).
    pub fn block_m(&self) -> u64 {
        self.rows as u64 * self.interleave_m as u64
    }

    /// Output tile width: columns of C produced per block
    /// (`cols · interleave_n`).
    pub fn block_n(&self) -> u64 {
        self.cols as u64 * self.interleave_n as u64
    }

    /// M20K blocks needed for the double-buffered A/B feeders and the C
    /// drain buffer.
    ///
    /// Feeder storage = 2 (double buffer) × (block_m + block_n) ×
    /// `CACHE_DEPTH` words × 4 bytes; C drain = block_m × block_n words.
    /// One M20K holds 2.5 KB.
    pub fn m20ks_used(&self) -> u32 {
        const M20K_BYTES: u64 = 2560;
        let feeder_bytes = 2 * (self.block_m() + self.block_n()) * Self::CACHE_DEPTH as u64 * 4;
        let drain_bytes = self.block_m() * self.block_n() * 4;
        ((feeder_bytes + drain_bytes).div_ceil(M20K_BYTES)) as u32
    }

    /// Peak throughput of this grid on `device` in FLOP/s
    /// (`2 · dsps_used · f_clk`) — the configuration's compute roofline
    /// before bandwidth.
    pub fn peak_flops(&self, device: &FpgaDevice) -> f64 {
        2.0 * self.dsps_used() as f64 * device.clock_hz()
    }

    /// Checks that the grid fits on `device`.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::TooManyDsps`] / [`GridError::TooManyM20ks`]
    /// when the grid exceeds the device budget — the engine scores such
    /// candidates as infeasible rather than panicking.
    pub fn validate_for(&self, device: &FpgaDevice) -> Result<(), GridError> {
        if self.dsps_used() > device.dsp_blocks {
            return Err(GridError::TooManyDsps {
                needed: self.dsps_used(),
                available: device.dsp_blocks,
            });
        }
        if self.m20ks_used() > device.m20k_blocks {
            return Err(GridError::TooManyM20ks {
                needed: self.m20ks_used(),
                available: device.m20k_blocks,
            });
        }
        Ok(())
    }

    /// Compact description, e.g. `8x8x4 il=4x4` (rows × cols × vec).
    pub fn describe(&self) -> String {
        format!(
            "{}x{}x{} il={}x{}",
            self.rows, self.cols, self.vec, self.interleave_m, self.interleave_n
        )
    }
}

impl fmt::Display for GridConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_zero_dims() {
        assert_eq!(
            GridConfig::new(0, 8, 4, 4, 8).unwrap_err(),
            GridError::ZeroDimension
        );
        assert_eq!(
            GridConfig::new(8, 8, 4, 4, 0).unwrap_err(),
            GridError::ZeroDimension
        );
    }

    #[test]
    fn dsps_used_is_product() {
        let g = GridConfig::new(8, 10, 4, 4, 8).unwrap();
        assert_eq!(g.dsps_used(), 640);
    }

    #[test]
    fn block_dims() {
        let g = GridConfig::new(8, 4, 16, 32, 8).unwrap();
        assert_eq!(g.block_m(), 128);
        assert_eq!(g.block_n(), 128);
    }

    #[test]
    fn validate_rejects_oversized_grid_for_arria10() {
        let device = FpgaDevice::arria10_gx1150(1);
        // 16*16*8 = 2048 DSPs > 1518.
        let g = GridConfig::new(16, 16, 4, 4, 8).unwrap();
        assert!(matches!(
            g.validate_for(&device),
            Err(GridError::TooManyDsps {
                needed: 2048,
                available: 1518
            })
        ));
    }

    #[test]
    fn validate_accepts_paper_scale_grid() {
        let device = FpgaDevice::arria10_gx1150(1);
        // 8*8*8 = 512 DSPs, modest buffering.
        let g = GridConfig::new(8, 8, 4, 4, 8).unwrap();
        assert!(g.validate_for(&device).is_ok());
    }

    #[test]
    fn m20k_estimate_grows_with_interleave() {
        let small = GridConfig::new(8, 8, 2, 2, 8).unwrap();
        let big = GridConfig::new(8, 8, 32, 32, 8).unwrap();
        assert!(big.m20ks_used() > small.m20ks_used());
    }

    #[test]
    fn huge_interleave_fails_m20k_budget() {
        let device = FpgaDevice::arria10_gx1150(1);
        let g = GridConfig::new(32, 32, 64, 64, 1).unwrap();
        assert!(matches!(
            g.validate_for(&device),
            Err(GridError::TooManyM20ks { .. })
        ));
    }

    #[test]
    fn peak_flops_uses_grid_not_device_dsps() {
        let device = FpgaDevice::arria10_gx1150(1);
        let g = GridConfig::new(4, 4, 4, 4, 4).unwrap(); // 64 DSPs
        assert_eq!(g.peak_flops(&device), 2.0 * 64.0 * 250e6);
    }

    #[test]
    fn describe_format() {
        let g = GridConfig::new(8, 4, 2, 3, 16).unwrap();
        assert_eq!(g.describe(), "8x4x16 il=2x3");
        assert_eq!(g.to_string(), g.describe());
    }
}
