//! The hardware-database worker's FPGA performance model (§III-C).
//!
//! "Calculating these results in the model is accomplished by starting
//! with the baseline performance of a configuration. ... The utilization
//! of DSPs is the product of the grid dimensions and vector width. This
//! number is the potential performance, but before considering
//! bandwidth. Using the DRAM specs from the configuration, we can
//! determine the ratio of how much bandwidth is available to how much we
//! need. ... Next, the grid configuration is used to break the ANN up
//! into a series of blocked matrix multiplications."
//!
//! The model reproduces that math:
//!
//! 1. **Compute roofline** — `2 · rows·cols·vec · f_clk` FLOP/s.
//! 2. **Bandwidth need** — per output block, the feeders stream an
//!    `block_m × k` A-tile and a `k × block_n` B-tile and drain a
//!    `block_m × block_n` C-tile; the block occupies the grid for
//!    `interleave_m · interleave_n · ceil(k/vec)` cycles (plus pipeline
//!    drain). Bytes over cycles gives the required GB/s; a deficit
//!    inflates cycles proportionally (a bandwidth-stalled design).
//! 3. **Effective performance** — real FLOPs over modeled time, with
//!    partial edge blocks costing full-block cycles (this is where small
//!    batches on big grids lose efficiency, the co-design signal).


use crate::{total_flops, F32_BYTES};

use super::{FpgaDevice, GridConfig, GridError};

/// Per-layer output of the FPGA model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerPerf {
    /// GEMM shape of this layer.
    pub shape: (usize, usize, usize),
    /// Modeled execution time in seconds (including bandwidth stalls).
    pub time_s: f64,
    /// Bandwidth this layer wants in bytes/s at full compute rate.
    pub bandwidth_needed: f64,
    /// Stall factor applied (`>= 1`; 1 means compute-bound).
    pub stall: f64,
}

/// Aggregate output of the FPGA model for one candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaPerf {
    /// Roofline of the configuration after the bandwidth ratio, in
    /// GFLOP/s — the paper's "potential performance".
    pub potential_gflops: f64,
    /// Compute roofline before bandwidth (2·DSPs·f), in GFLOP/s.
    pub compute_roofline_gflops: f64,
    /// Achieved GFLOP/s on this workload — the "effective performance".
    pub effective_gflops: f64,
    /// `effective / potential` — the paper's hardware-efficiency metric
    /// (§IV-D), clamped to `[0, 1]`.
    pub efficiency: f64,
    /// Modeled wall time for one run (batch through all layers), s.
    pub total_time_s: f64,
    /// Classification results produced per second (`batch / total_time`).
    pub outputs_per_s: f64,
    /// Time from run start until the first result lands in DRAM, s.
    pub latency_s: f64,
    /// Whether any layer was bandwidth-stalled.
    pub bandwidth_bound: bool,
    /// Per-layer breakdown.
    pub layers: Vec<LayerPerf>,
}

/// The FPGA analytical performance model for one device.
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaModel {
    device: FpgaDevice,
}

impl FpgaModel {
    /// Pipeline drain cycles charged per block (`rows + cols` stages).
    fn drain_cycles(grid: &GridConfig) -> u64 {
        (grid.rows() + grid.cols()) as u64
    }

    /// Creates a model for `device`.
    pub fn new(device: FpgaDevice) -> Self {
        Self { device }
    }

    /// The device this model scores against.
    pub fn device(&self) -> &FpgaDevice {
        &self.device
    }

    /// Scores `grid` running the GEMM layer sequence `layers`
    /// (shapes `(m, k, n)`; `m` is the batch and must match across
    /// layers for the outputs/s metric to be meaningful).
    ///
    /// # Errors
    ///
    /// Returns [`GridError`] if the grid does not fit on the device.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or any dimension is zero — an MLP
    /// always has at least its output layer.
    pub fn evaluate(
        &self,
        grid: &GridConfig,
        layers: &[(usize, usize, usize)],
    ) -> Result<FpgaPerf, GridError> {
        assert!(!layers.is_empty(), "an MLP has at least one GEMM layer");
        assert!(
            layers.iter().all(|&(m, k, n)| m > 0 && k > 0 && n > 0),
            "GEMM dimensions must be positive"
        );
        grid.validate_for(&self.device)?;

        let f = self.device.clock_hz();
        let bw_available = self.device.ddr.bytes_per_s();
        let block_m = grid.block_m();
        let block_n = grid.block_n();

        let mut layer_perfs = Vec::with_capacity(layers.len());
        let mut total_cycles = 0.0f64;
        let mut compute_cycles = 0.0f64; // without stalls
        let mut total_bytes = 0.0f64;
        let mut latency_cycles = 0.0f64;
        let mut bandwidth_bound = false;

        for &(m, k, n) in layers {
            let blocks_m = (m as u64).div_ceil(block_m);
            let blocks_n = (n as u64).div_ceil(block_n);
            let k_chunks = (k as u64).div_ceil(grid.vec() as u64);
            let cycles_per_block =
                grid.interleave_m() as u64 * grid.interleave_n() as u64 * k_chunks
                    + Self::drain_cycles(grid);

            // Streaming traffic per block: A tile + B tile in, C tile out.
            let bytes_per_block = F32_BYTES
                * (block_m as f64 * k as f64
                    + k as f64 * block_n as f64
                    + block_m as f64 * block_n as f64);
            let time_per_block_compute = cycles_per_block as f64 / f;
            let bandwidth_needed = bytes_per_block / time_per_block_compute;
            let stall = (bandwidth_needed / bw_available).max(1.0);
            if stall > 1.0 {
                bandwidth_bound = true;
            }

            let blocks = (blocks_m * blocks_n) as f64;
            let layer_cycles = blocks * cycles_per_block as f64 * stall;
            total_cycles += layer_cycles;
            compute_cycles += blocks * cycles_per_block as f64;
            total_bytes += blocks * bytes_per_block;
            // First result: the m-block containing row 0 must finish all
            // of its n-blocks in every layer before the next layer can
            // produce its first block.
            latency_cycles += blocks_n as f64 * cycles_per_block as f64 * stall;

            layer_perfs.push(LayerPerf {
                shape: (m, k, n),
                time_s: layer_cycles / f,
                bandwidth_needed,
                stall,
            });
        }

        let total_time_s = total_cycles / f;
        let flops = total_flops(layers);
        let effective = flops / total_time_s;

        let compute_roofline = grid.peak_flops(&self.device);
        // Aggregate bandwidth requirement at full compute rate.
        let aggregate_needed = total_bytes / (compute_cycles / f);
        let bw_ratio = (bw_available / aggregate_needed).min(1.0);
        let potential = compute_roofline * bw_ratio;
        let efficiency = (effective / potential).clamp(0.0, 1.0);

        let batch = layers[0].0 as f64;
        Ok(FpgaPerf {
            potential_gflops: potential / 1e9,
            compute_roofline_gflops: compute_roofline / 1e9,
            effective_gflops: effective / 1e9,
            efficiency,
            total_time_s,
            outputs_per_s: batch / total_time_s,
            latency_s: latency_cycles / f,
            bandwidth_bound,
            layers: layer_perfs,
        })
    }

    /// Like [`FpgaModel::evaluate`], narrating the outcome through
    /// `obs`: a failed device-fit check emits a warn `fpga_unfit`
    /// event, and a bandwidth-stalled design emits a debug
    /// `bandwidth_bound` event with the worst per-layer stall factor —
    /// the roofline signals a search operator wants to see live.
    pub fn evaluate_observed(
        &self,
        grid: &GridConfig,
        layers: &[(usize, usize, usize)],
        obs: &rt::obs::Obs,
    ) -> Result<FpgaPerf, GridError> {
        let _prof = rt::prof_span!("fpga_model");
        let result = self.evaluate(grid, layers);
        match &result {
            Err(e) => {
                rt::warn!(
                    obs,
                    "fpga_unfit",
                    device = self.device.name.as_str(),
                    detail = e.to_string(),
                );
            }
            Ok(perf) if perf.bandwidth_bound => {
                let worst_stall = perf.layers.iter().map(|l| l.stall).fold(1.0, f64::max);
                rt::debug!(
                    obs,
                    "bandwidth_bound",
                    device = self.device.name.as_str(),
                    worst_stall = worst_stall,
                    efficiency = perf.efficiency,
                );
            }
            Ok(_) => {}
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arria_model() -> FpgaModel {
        FpgaModel::new(FpgaDevice::arria10_gx1150(1))
    }

    fn grid(rows: u32, cols: u32, il: u32, vec: u32) -> GridConfig {
        GridConfig::new(rows, cols, il, il, vec).unwrap()
    }

    #[test]
    fn perfectly_tiled_layer_has_high_efficiency() {
        // Batch exactly block_m, n exactly block_n, k large and
        // vec-aligned: minimal edge waste.
        let g = grid(8, 8, 4, 8); // block 32x32, 512 DSPs
        let m = 32usize;
        let n = 32usize;
        let k = 4096usize;
        let perf = arria_model().evaluate(&g, &[(m, k, n)]).unwrap();
        assert!(perf.efficiency > 0.8, "efficiency {}", perf.efficiency);
    }

    #[test]
    fn tiny_batch_on_big_grid_is_inefficient() {
        let g = grid(16, 16, 4, 4); // block 64x64
        let perf = arria_model().evaluate(&g, &[(1, 1024, 64)]).unwrap();
        // Only 1 of 64 block rows does useful work.
        assert!(perf.efficiency < 0.2, "efficiency {}", perf.efficiency);
    }

    #[test]
    fn effective_never_exceeds_compute_roofline() {
        let g = grid(8, 8, 8, 8);
        let perf = arria_model()
            .evaluate(&g, &[(64, 784, 256), (64, 256, 10)])
            .unwrap();
        assert!(perf.effective_gflops <= perf.compute_roofline_gflops + 1e-9);
        assert!(perf.effective_gflops <= perf.potential_gflops * (1.0 + 1e-9));
    }

    #[test]
    fn more_banks_never_hurt_throughput() {
        let g = grid(16, 16, 4, 4);
        let layers = [(32usize, 2048usize, 1024usize), (32, 1024, 10)];
        let mut prev = 0.0;
        for banks in [1u32, 2, 4] {
            let model = FpgaModel::new(FpgaDevice::arria10_gx1150(banks));
            let perf = model.evaluate(&g, &layers).unwrap();
            assert!(
                perf.outputs_per_s >= prev,
                "banks {banks}: {} < {prev}",
                perf.outputs_per_s
            );
            prev = perf.outputs_per_s;
        }
    }

    #[test]
    fn bandwidth_bound_design_detected_on_single_bank() {
        // Big grid, thin interleave => heavy streaming per cycle.
        let g = grid(16, 16, 1, 4);
        let perf = arria_model().evaluate(&g, &[(16, 4096, 4096)]).unwrap();
        assert!(perf.bandwidth_bound);
        assert!(perf.layers[0].stall > 1.0);
    }

    #[test]
    fn interleaving_relieves_bandwidth_pressure() {
        // Same DSP count; deeper interleave reuses tiles over more
        // cycles, cutting required GB/s (the paper's double-buffer
        // rationale).
        let thin = grid(16, 16, 1, 4);
        let deep = grid(16, 16, 8, 4);
        let layers = [(64usize, 4096usize, 4096usize)];
        let thin_perf = arria_model().evaluate(&thin, &layers).unwrap();
        let deep_perf = arria_model().evaluate(&deep, &layers).unwrap();
        assert!(deep_perf.layers[0].bandwidth_needed < thin_perf.layers[0].bandwidth_needed);
        assert!(deep_perf.outputs_per_s > thin_perf.outputs_per_s);
    }

    #[test]
    fn stratix10_outperforms_arria10_on_large_work() {
        let g = grid(16, 16, 8, 8); // 2048 DSPs: fits S10, not A10
        let layers = [(128usize, 2048usize, 2048usize)];
        let s10 = FpgaModel::new(FpgaDevice::stratix10_2800(4));
        let s10_perf = s10.evaluate(&g, &layers).unwrap();
        let a10_small = grid(8, 8, 8, 8);
        let a10_perf = arria_model().evaluate(&a10_small, &layers).unwrap();
        assert!(s10_perf.outputs_per_s > a10_perf.outputs_per_s);
    }

    #[test]
    fn oversized_grid_is_error_not_panic() {
        let g = grid(32, 32, 4, 8); // 8192 DSPs
        assert!(matches!(
            arria_model().evaluate(&g, &[(1, 10, 10)]),
            Err(GridError::TooManyDsps { .. })
        ));
    }

    #[test]
    fn latency_is_at_most_total_time() {
        let g = grid(8, 8, 4, 8);
        let perf = arria_model()
            .evaluate(&g, &[(128, 784, 512), (128, 512, 128), (128, 128, 10)])
            .unwrap();
        assert!(perf.latency_s <= perf.total_time_s + 1e-12);
        assert!(perf.latency_s > 0.0);
    }

    #[test]
    fn single_sample_latency_equals_total_time() {
        let g = grid(4, 4, 2, 4);
        let perf = arria_model()
            .evaluate(&g, &[(1, 64, 32), (1, 32, 2)])
            .unwrap();
        assert!((perf.latency_s - perf.total_time_s).abs() / perf.total_time_s < 1e-9);
    }

    #[test]
    fn outputs_per_s_scales_with_batch_until_blocks_fill() {
        let g = grid(8, 8, 4, 8); // block_m = 32
        let one = arria_model().evaluate(&g, &[(1, 512, 256)]).unwrap();
        let full = arria_model().evaluate(&g, &[(32, 512, 256)]).unwrap();
        // 32 samples fit the same block row: same time, 32x the outputs.
        assert!(full.outputs_per_s > one.outputs_per_s * 30.0);
    }

    #[test]
    #[should_panic(expected = "at least one GEMM layer")]
    fn empty_layers_panic() {
        let g = grid(4, 4, 2, 4);
        let _ = arria_model().evaluate(&g, &[]);
    }

    #[test]
    fn per_layer_times_sum_to_total() {
        let g = grid(8, 8, 2, 8);
        let perf = arria_model()
            .evaluate(&g, &[(16, 100, 200), (16, 200, 50), (16, 50, 10)])
            .unwrap();
        let sum: f64 = perf.layers.iter().map(|l| l.time_s).sum();
        assert!((sum - perf.total_time_s).abs() / perf.total_time_s < 1e-9);
    }
}
