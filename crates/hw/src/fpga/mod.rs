//! FPGA overlay model: device catalog, grid genes, performance model,
//! and the analytical synthesis (resource/Fmax/power) model.

mod device;
mod grid;
mod model;
mod physical;

pub use device::{DdrConfig, FpgaDevice};
pub use grid::{GridConfig, GridError};
pub use model::{FpgaModel, FpgaPerf, LayerPerf};
pub use physical::{PhysicalModel, PhysicalReport, ResourceEstimate};
