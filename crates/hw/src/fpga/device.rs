//! FPGA device catalog.
//!
//! The paper searches two Intel devices: an Arria 10 GX 1150 at 250 MHz
//! (759 GFLOP/s FP32 peak, one DDR4 bank at 19.2 GB/s on the dev kit)
//! and a Stratix 10 2800 at 400 MHz with 4 DDR banks ("scaling back the
//! roofline to 4.6 available TFLOP/s"). Changing the search target is
//! just a different [`FpgaDevice`] value — "all that is required to
//! change the design search space ... is the hardware configuration
//! used by the hardware database worker" (§III-C).


/// External DRAM configuration attached to the accelerator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdrConfig {
    /// Number of independent DDR banks.
    pub banks: u32,
    /// Peak bandwidth of one bank in GB/s.
    pub gb_per_s_per_bank: f64,
}

impl DdrConfig {
    /// DDR4-2400 single-bank configuration from the Arria 10 dev kit
    /// (19.2 GB/s per bank).
    pub fn ddr4(banks: u32) -> Self {
        Self {
            banks: banks.max(1),
            gb_per_s_per_bank: 19.2,
        }
    }

    /// Total bandwidth in bytes per second.
    pub fn bytes_per_s(&self) -> f64 {
        self.banks as f64 * self.gb_per_s_per_bank * 1e9
    }
}

/// An FPGA device plus board attributes relevant to the overlay model.
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaDevice {
    /// Marketing name, e.g. `"Arria 10 GX 1150"`.
    pub name: String,
    /// Hardened floating-point DSP blocks (one FP32 FMA each per cycle).
    pub dsp_blocks: u32,
    /// M20K embedded memory blocks (20 kbit each).
    pub m20k_blocks: u32,
    /// Adaptive logic modules.
    pub alms: u32,
    /// Target overlay clock in MHz (the paper's achieved OpenCL Fmax).
    pub clock_mhz: f64,
    /// Attached DRAM.
    pub ddr: DdrConfig,
}

impl FpgaDevice {
    /// Intel Arria 10 GX 1150 at 250 MHz with `banks` DDR4 banks.
    ///
    /// Peak FP32 = 2 · 1518 DSP · 250 MHz = 759 GFLOP/s, matching §IV.
    pub fn arria10_gx1150(banks: u32) -> Self {
        Self {
            name: "Arria 10 GX 1150".to_string(),
            dsp_blocks: 1518,
            m20k_blocks: 2713,
            alms: 427_200,
            clock_mhz: 250.0,
            ddr: DdrConfig::ddr4(banks),
        }
    }

    /// Intel Stratix 10 GX 2800 at 400 MHz with `banks` DDR4 banks.
    ///
    /// Peak FP32 = 2 · 5760 DSP · 400 MHz = 4.608 TFLOP/s — the paper's
    /// "4.6 available TFLOP/s" roofline.
    pub fn stratix10_2800(banks: u32) -> Self {
        Self {
            name: "Stratix 10 2800".to_string(),
            dsp_blocks: 5760,
            m20k_blocks: 11_721,
            alms: 933_120,
            clock_mhz: 400.0,
            ddr: DdrConfig::ddr4(banks),
        }
    }

    /// Clock frequency in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_mhz * 1e6
    }

    /// Device peak FP32 throughput in FLOP/s (2 ops per DSP per cycle).
    pub fn peak_flops(&self) -> f64 {
        2.0 * self.dsp_blocks as f64 * self.clock_hz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arria10_peak_matches_paper() {
        let d = FpgaDevice::arria10_gx1150(1);
        assert!((d.peak_flops() / 1e9 - 759.0).abs() < 1e-6);
    }

    #[test]
    fn stratix10_peak_matches_paper() {
        let d = FpgaDevice::stratix10_2800(4);
        assert!((d.peak_flops() / 1e12 - 4.608).abs() < 1e-3);
    }

    #[test]
    fn ddr_bandwidth_scales_linearly_with_banks() {
        assert_eq!(DdrConfig::ddr4(1).bytes_per_s(), 19.2e9);
        assert_eq!(DdrConfig::ddr4(2).bytes_per_s(), 38.4e9);
        assert_eq!(DdrConfig::ddr4(4).bytes_per_s(), 76.8e9);
    }

    #[test]
    fn zero_banks_clamps_to_one() {
        assert_eq!(DdrConfig::ddr4(0).banks, 1);
    }
}
