//! The physical worker's analytical synthesis model.
//!
//! In the paper, "the physical worker aims to provide the fitness of the
//! hardware design itself through metrics such as power, logic
//! utilization, and operation frequency. In the case of Intel FPGAs, the
//! physical worker responds with ALM, M20K, and DSP utilization, power
//! estimations, and clock frequency (Fmax)" (§III-B).
//!
//! Running Quartus is replaced here by an analytical model (DESIGN.md §2,
//! substitution 1) calibrated to the paper's reported envelope: across
//! "many Arria 10 designs", Fmax averaged 250 MHz and chip power ranged
//! 22.5–31.89 W with a 27 W average. The model charges ALMs for PE
//! control and feeder logic, derives utilization fractions, degrades
//! Fmax as the device fills (routing congestion), and scales dynamic
//! power with active DSPs and clock rate on top of a static floor.


use super::{FpgaDevice, GridConfig, GridError};

/// Resource usage of a synthesized overlay configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceEstimate {
    /// Adaptive logic modules used.
    pub alms: u32,
    /// M20K memory blocks used.
    pub m20ks: u32,
    /// DSP blocks used.
    pub dsps: u32,
    /// ALM utilization fraction of the device.
    pub alm_util: f64,
    /// M20K utilization fraction of the device.
    pub m20k_util: f64,
    /// DSP utilization fraction of the device.
    pub dsp_util: f64,
}

/// The physical worker's report for one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhysicalReport {
    /// Resource usage and utilization.
    pub resources: ResourceEstimate,
    /// Estimated achievable clock, MHz.
    pub fmax_mhz: f64,
    /// Estimated chip power at `fmax`, watts.
    pub power_w: f64,
}

/// Analytical synthesis model for one device.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalModel {
    device: FpgaDevice,
}

impl PhysicalModel {
    /// Static (idle) chip power in watts, calibrated to the paper's
    /// 22.5 W minimum observation.
    const STATIC_POWER_W: f64 = 21.0;

    /// Fixed ALM cost of the OpenCL board-support shell.
    const SHELL_ALMS: u32 = 60_000;

    /// ALMs per PE for control/accumulate logic.
    const ALMS_PER_PE: u32 = 220;

    /// ALMs per vector lane for operand routing.
    const ALMS_PER_LANE: u32 = 35;

    /// ALMs per feeder (one per grid row and column).
    const ALMS_PER_FEEDER: u32 = 900;

    /// Creates a model for `device`.
    pub fn new(device: FpgaDevice) -> Self {
        Self { device }
    }

    /// The device this model targets.
    pub fn device(&self) -> &FpgaDevice {
        &self.device
    }

    /// Estimates resources for `grid`.
    ///
    /// # Errors
    ///
    /// Returns [`GridError`] if the grid does not fit the device's DSP
    /// or M20K budget, or the ALM estimate exceeds the device.
    pub fn resources(&self, grid: &GridConfig) -> Result<ResourceEstimate, GridError> {
        grid.validate_for(&self.device)?;
        let pes = grid.rows() * grid.cols();
        let lanes = grid.dsps_used();
        let feeders = grid.rows() + grid.cols();
        let alms = Self::SHELL_ALMS
            + pes * Self::ALMS_PER_PE
            + lanes * Self::ALMS_PER_LANE
            + feeders * Self::ALMS_PER_FEEDER;
        if alms > self.device.alms {
            return Err(GridError::TooManyAlms {
                needed: alms,
                available: self.device.alms,
            });
        }
        let dsps = grid.dsps_used();
        let m20ks = grid.m20ks_used();
        Ok(ResourceEstimate {
            alms,
            m20ks,
            dsps,
            alm_util: alms as f64 / self.device.alms as f64,
            m20k_util: m20ks as f64 / self.device.m20k_blocks as f64,
            dsp_util: dsps as f64 / self.device.dsp_blocks as f64,
        })
    }

    /// Full synthesis report: resources, Fmax, power.
    ///
    /// Fmax starts at the device target and degrades quadratically with
    /// overall utilization (routing congestion); power is a static floor
    /// plus dynamic terms for DSP activity, memory, and fabric.
    ///
    /// # Errors
    ///
    /// Returns [`GridError`] if the grid does not fit the device.
    pub fn report(&self, grid: &GridConfig) -> Result<PhysicalReport, GridError> {
        let resources = self.resources(grid)?;
        let congestion = resources
            .alm_util
            .max(resources.dsp_util)
            .max(resources.m20k_util);
        // Up to 18% Fmax loss as the device approaches full.
        let fmax_mhz = self.device.clock_mhz * (1.0 - 0.18 * congestion * congestion);
        let clock_ratio = fmax_mhz / self.device.clock_mhz;
        let dynamic = 9.0 * resources.dsp_util * clock_ratio
            + 2.5 * resources.m20k_util * clock_ratio
            + 1.5 * resources.alm_util * clock_ratio;
        let power_w = Self::STATIC_POWER_W + dynamic;
        Ok(PhysicalReport {
            resources,
            fmax_mhz,
            power_w,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PhysicalModel {
        PhysicalModel::new(FpgaDevice::arria10_gx1150(1))
    }

    #[test]
    fn utilization_fractions_in_unit_interval() {
        let g = GridConfig::new(8, 8, 4, 4, 8).unwrap();
        let r = model().resources(&g).unwrap();
        for u in [r.alm_util, r.m20k_util, r.dsp_util] {
            assert!((0.0..=1.0).contains(&u), "{u}");
        }
    }

    #[test]
    fn dsp_count_matches_grid() {
        let g = GridConfig::new(8, 8, 4, 4, 8).unwrap();
        assert_eq!(model().resources(&g).unwrap().dsps, 512);
    }

    #[test]
    fn bigger_grid_uses_more_alms() {
        let small = GridConfig::new(4, 4, 2, 2, 4).unwrap();
        let big = GridConfig::new(12, 12, 4, 4, 8).unwrap();
        let m = model();
        assert!(m.resources(&big).unwrap().alms > m.resources(&small).unwrap().alms);
    }

    #[test]
    fn power_stays_in_paper_envelope() {
        // "minimum power 22.5 W, maximum 31.89 W, average 27 W" across
        // feasible Arria 10 designs.
        let m = model();
        let mut powers = Vec::new();
        for (r, c, il, v) in [
            (2u32, 2u32, 2u32, 4u32),
            (4, 4, 4, 4),
            (8, 8, 4, 8),
            (10, 12, 8, 8),
            (16, 8, 8, 8),
            (12, 12, 4, 8),
        ] {
            let g = GridConfig::new(r, c, il, il, v).unwrap();
            if let Ok(rep) = m.report(&g) {
                powers.push(rep.power_w);
            }
        }
        assert!(!powers.is_empty());
        for p in &powers {
            assert!((21.0..=32.5).contains(p), "power {p} outside envelope");
        }
        let spread = powers.iter().cloned().fold(f64::MIN, f64::max)
            - powers.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            spread > 1.0,
            "power should vary across configs, spread {spread}"
        );
    }

    #[test]
    fn fmax_degrades_with_utilization() {
        let m = model();
        let tiny = m.report(&GridConfig::new(2, 2, 2, 2, 2).unwrap()).unwrap();
        let full = m
            .report(&GridConfig::new(13, 12, 4, 4, 8).unwrap())
            .unwrap();
        assert!(full.fmax_mhz < tiny.fmax_mhz);
        assert!(
            full.fmax_mhz > 200.0,
            "fmax should stay near the 250 MHz target"
        );
    }

    #[test]
    fn infeasible_grid_is_error() {
        let g = GridConfig::new(40, 40, 4, 4, 8).unwrap();
        assert!(model().report(&g).is_err());
    }

    #[test]
    fn stratix_reports_higher_fmax_headroom() {
        let g = GridConfig::new(8, 8, 4, 4, 8).unwrap();
        let a10 = model().report(&g).unwrap();
        let s10 = PhysicalModel::new(FpgaDevice::stratix10_2800(4))
            .report(&g)
            .unwrap();
        assert!(s10.fmax_mhz > a10.fmax_mhz);
    }
}
