//! # ecad-hw
//!
//! Analytical hardware performance and resource models for the ECAD
//! co-design flow.
//!
//! The paper evaluates candidate hardware through three worker types
//! (§III-B); this crate supplies the models those workers call:
//!
//! * [`fpga`] — the 2D systolic GEMM overlay (§III-C): device catalog
//!   (Arria 10 GX 1150, Stratix 10 2800, 1/2/4 DDR4 banks), grid
//!   configuration genes (rows × cols × vector width, interleave double
//!   buffers), the blocked-GEMM performance model (potential vs
//!   effective GFLOP/s, outputs/s, latency), and the analytical
//!   synthesis model (ALM/M20K/DSP utilization, Fmax, power) used by the
//!   physical worker.
//! * [`gpu`] — the fixed-architecture comparators (Quadro M5000,
//!   Titan X, Radeon VII): per-kernel roofline with launch overhead,
//!   matching the paper's TensorFlow-trace timing methodology (DRAM
//!   transfers excluded).
//! * [`cpu`] — the other instruction-set target the paper's simulation
//!   worker supports: a BLAS-call roofline for server/desktop CPUs.
//!
//! Both models consume the MLP's GEMM decomposition — a slice of
//! `(m, k, n)` layer shapes — and return throughput metrics in the
//! paper's units (GFLOP/s, outputs per second, seconds of latency).
//!
//! These are *models*, not cycle-accurate simulators: the paper itself
//! scores nearly every candidate through its "hardware database worker",
//! i.e. exactly this kind of analytical model (see `DESIGN.md` §2).
//!
//! ## Example
//!
//! ```
//! use ecad_hw::fpga::{FpgaDevice, GridConfig, FpgaModel};
//!
//! let device = FpgaDevice::arria10_gx1150(1);
//! let grid = GridConfig::new(8, 8, 4, 4, 8)?;
//! let model = FpgaModel::new(device);
//! // One 256-wide hidden layer on 784 inputs, batch 16.
//! let perf = model.evaluate(&grid, &[(16, 784, 256), (16, 256, 10)])?;
//! assert!(perf.outputs_per_s > 0.0);
//! assert!(perf.efficiency <= 1.0 + 1e-6);
//! # Ok::<(), ecad_hw::fpga::GridError>(())
//! ```

#![warn(missing_docs)]

pub mod cpu;
pub mod fpga;
pub mod gpu;

/// Bytes per FP32 element; the whole flow is single-precision, matching
/// the paper ("All data is 32-bit floating-point").
pub const F32_BYTES: f64 = 4.0;

/// Convenience: total `2·m·k·n` FLOP count over a set of GEMM layers.
pub fn total_flops(layers: &[(usize, usize, usize)]) -> f64 {
    layers
        .iter()
        .map(|&(m, k, n)| 2.0 * m as f64 * k as f64 * n as f64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_flops_sums_layers() {
        assert_eq!(total_flops(&[(1, 2, 3), (4, 5, 6)]), 12.0 + 240.0);
        assert_eq!(total_flops(&[]), 0.0);
    }
}
