//! CPU device catalog.


/// A CPU's roofline attributes for the simulation worker.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuDevice {
    /// Marketing name.
    pub name: String,
    /// Physical cores used for inference.
    pub cores: u32,
    /// FP32 lanes per core per cycle with FMA (AVX2: 16, AVX-512: 32,
    /// counting both FMA ports where present).
    pub flops_per_core_per_cycle: u32,
    /// Sustained all-core clock in GHz.
    pub clock_ghz: f64,
    /// Peak memory bandwidth in GB/s.
    pub mem_gb_per_s: f64,
    /// Per-BLAS-call overhead in seconds (dispatch + threading
    /// fork/join), far smaller than a GPU kernel launch.
    pub call_overhead_s: f64,
    /// Fraction of peak the threaded GEMM sustains on well-shaped
    /// problems (parallel + cache efficiency).
    pub gemm_efficiency: f64,
    /// Package TDP in watts (reporting only).
    pub tdp_w: f64,
}

impl CpuDevice {
    /// A 22-core Xeon-class server part (Broadwell-EP flavour):
    /// 22 × 32 FLOP/cycle × 2.2 GHz ≈ 1.55 TFLOP/s FP32, 76.8 GB/s.
    pub fn xeon_22c() -> Self {
        Self {
            name: "Xeon 22-core".to_string(),
            cores: 22,
            flops_per_core_per_cycle: 32,
            clock_ghz: 2.2,
            mem_gb_per_s: 76.8,
            call_overhead_s: 3e-6,
            gemm_efficiency: 0.75,
            tdp_w: 145.0,
        }
    }

    /// A desktop 8-core part (AVX2): 8 × 16 × 3.6 GHz ≈ 0.46 TFLOP/s.
    pub fn desktop_8c() -> Self {
        Self {
            name: "Desktop 8-core".to_string(),
            cores: 8,
            flops_per_core_per_cycle: 16,
            clock_ghz: 3.6,
            mem_gb_per_s: 41.6,
            call_overhead_s: 2e-6,
            gemm_efficiency: 0.8,
            tdp_w: 95.0,
        }
    }

    /// Peak FP32 throughput in FLOP/s.
    pub fn peak_flops(&self) -> f64 {
        self.cores as f64 * self.flops_per_core_per_cycle as f64 * self.clock_ghz * 1e9
    }

    /// Sustained GEMM throughput in FLOP/s.
    pub fn sustained_flops(&self) -> f64 {
        self.peak_flops() * self.gemm_efficiency
    }

    /// Peak memory bandwidth in bytes/s.
    pub fn mem_bytes_per_s(&self) -> f64 {
        self.mem_gb_per_s * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xeon_peak_is_teraflop_class() {
        let d = CpuDevice::xeon_22c();
        assert!((d.peak_flops() / 1e12 - 1.5488).abs() < 1e-3);
        assert!(d.sustained_flops() < d.peak_flops());
    }

    #[test]
    fn desktop_is_slower_than_server() {
        assert!(CpuDevice::desktop_8c().peak_flops() < CpuDevice::xeon_22c().peak_flops());
    }
}
