//! CPU comparator model.
//!
//! The paper's *simulation worker* covers "instruction-set based
//! architectures such as CPU and GPU" (§III-B). The CPU model follows
//! the same per-kernel roofline recipe as the GPU model — BLAS GEMM at
//! `min(compute, memory)` roofline plus a per-call overhead — with
//! CPU-shaped parameters: far fewer FLOP/s, far lower call overhead
//! (a `sgemm` call, not a device launch), and a parallel-efficiency
//! factor for the multicore fork/join.

mod device;
mod model;

pub use device::CpuDevice;
pub use model::{CpuModel, CpuPerf};
