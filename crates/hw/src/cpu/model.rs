//! Per-layer CPU timing model.


use crate::{total_flops, F32_BYTES};

use super::CpuDevice;

/// Aggregate CPU timing result for one candidate MLP.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuPerf {
    /// Modeled wall time for one batch through all layers, s.
    pub total_time_s: f64,
    /// Classification results per second.
    pub outputs_per_s: f64,
    /// Achieved GFLOP/s over the whole run.
    pub effective_gflops: f64,
    /// Effective FLOP/s over device peak.
    pub efficiency: f64,
    /// Seconds for one batch (no pipelining across calls).
    pub latency_s: f64,
    /// BLAS calls issued (GEMM + bias + activation per layer).
    pub calls: usize,
}

/// The CPU analytical timing model for one device.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuModel {
    device: CpuDevice,
}

impl CpuModel {
    /// Creates a model for `device`.
    pub fn new(device: CpuDevice) -> Self {
        Self { device }
    }

    /// The device this model times against.
    pub fn device(&self) -> &CpuDevice {
        &self.device
    }

    /// Times the GEMM layer sequence `layers` (shapes `(m, k, n)`) with
    /// per-layer bias flags, mirroring
    /// [`crate::gpu::GpuModel::evaluate`]'s accounting so CPU and GPU
    /// numbers are directly comparable.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty, `with_bias` mismatches, or any
    /// dimension is zero.
    pub fn evaluate(&self, layers: &[(usize, usize, usize)], with_bias: &[bool]) -> CpuPerf {
        assert!(!layers.is_empty(), "an MLP has at least one GEMM layer");
        assert_eq!(
            layers.len(),
            with_bias.len(),
            "bias flags must match layers"
        );
        assert!(
            layers.iter().all(|&(m, k, n)| m > 0 && k > 0 && n > 0),
            "GEMM dimensions must be positive"
        );
        let sustained = self.device.sustained_flops();
        let bw = self.device.mem_bytes_per_s();
        let call = self.device.call_overhead_s;

        let mut time = 0.0f64;
        let mut calls = 0usize;
        for (&(m, k, n), &bias) in layers.iter().zip(with_bias) {
            let (m, k, n) = (m as f64, k as f64, n as f64);
            let flops = 2.0 * m * k * n;
            let compute_t = flops / sustained;
            let bytes = F32_BYTES * (m * k + k * n + m * n);
            let mem_t = bytes / bw;
            time += compute_t.max(mem_t) + call;
            calls += 1;
            if bias {
                time += F32_BYTES * (2.0 * m * n + n) / bw + call;
                calls += 1;
            }
            time += F32_BYTES * 2.0 * m * n / bw + call;
            calls += 1;
        }

        let flops = total_flops(layers);
        let effective = flops / time;
        let batch = layers[0].0 as f64;
        CpuPerf {
            total_time_s: time,
            outputs_per_s: batch / time,
            effective_gflops: effective / 1e9,
            efficiency: (effective / self.device.peak_flops()).clamp(0.0, 1.0),
            latency_s: time,
            calls,
        }
    }

    /// Like [`CpuModel::evaluate`], emitting a debug `cpu_model` event
    /// through `obs` with the headline numbers (BLAS call count,
    /// efficiency).
    pub fn evaluate_observed(
        &self,
        layers: &[(usize, usize, usize)],
        with_bias: &[bool],
        obs: &rt::obs::Obs,
    ) -> CpuPerf {
        let _prof = rt::prof_span!("cpu_model");
        let perf = self.evaluate(layers, with_bias);
        rt::debug!(
            obs,
            "cpu_model",
            device = self.device.name.as_str(),
            calls = perf.calls,
            efficiency = perf.efficiency,
        );
        perf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::{GpuDevice, GpuModel};

    fn mlp_shapes(batch: usize) -> (Vec<(usize, usize, usize)>, Vec<bool>) {
        (
            vec![(batch, 561, 128), (batch, 128, 64), (batch, 64, 6)],
            vec![true, true, true],
        )
    }

    #[test]
    fn cpu_beats_gpu_at_batch_one() {
        // Launch overhead dominates tiny batches: the CPU's cheap BLAS
        // dispatch wins single-sample latency.
        let (layers, bias) = mlp_shapes(1);
        let cpu = CpuModel::new(CpuDevice::xeon_22c()).evaluate(&layers, &bias);
        let gpu = GpuModel::new(GpuDevice::titan_x()).evaluate(&layers, &bias);
        assert!(cpu.latency_s < gpu.latency_s);
    }

    #[test]
    fn gpu_beats_cpu_on_heavy_batched_work() {
        // Once the GEMMs are big enough to hide the framework overhead,
        // the GPU's order-of-magnitude FLOP advantage shows.
        let layers = vec![(4096, 561, 512), (4096, 512, 256), (4096, 256, 10)];
        let bias = vec![true, true, true];
        let cpu = CpuModel::new(CpuDevice::xeon_22c()).evaluate(&layers, &bias);
        let gpu = GpuModel::new(GpuDevice::titan_x()).evaluate(&layers, &bias);
        assert!(gpu.outputs_per_s > cpu.outputs_per_s);
    }

    #[test]
    fn cpu_competitive_at_moderate_batches() {
        // At serving-sized batches the TF dispatch overhead keeps the
        // GPU within an order of magnitude of a strong CPU — part of
        // why the paper stresses co-designed hardware for MLPs.
        let (layers, bias) = mlp_shapes(256);
        let cpu = CpuModel::new(CpuDevice::xeon_22c()).evaluate(&layers, &bias);
        let gpu = GpuModel::new(GpuDevice::titan_x()).evaluate(&layers, &bias);
        let ratio = gpu.outputs_per_s / cpu.outputs_per_s;
        assert!((0.05..20.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn efficiency_is_bounded_fraction() {
        let (layers, bias) = mlp_shapes(64);
        let perf = CpuModel::new(CpuDevice::desktop_8c()).evaluate(&layers, &bias);
        assert!((0.0..=1.0).contains(&perf.efficiency));
        assert!(perf.calls == 9);
    }

    #[test]
    fn effective_times_time_equals_flops() {
        let (layers, bias) = mlp_shapes(32);
        let perf = CpuModel::new(CpuDevice::xeon_22c()).evaluate(&layers, &bias);
        let implied = perf.effective_gflops * 1e9 * perf.total_time_s;
        let actual = crate::total_flops(&layers);
        assert!((implied - actual).abs() / actual < 1e-9);
    }

    #[test]
    fn batching_amortizes_call_overhead() {
        let (l1, b) = mlp_shapes(1);
        let (l256, _) = mlp_shapes(256);
        let model = CpuModel::new(CpuDevice::xeon_22c());
        let one = model.evaluate(&l1, &b);
        let big = model.evaluate(&l256, &b);
        assert!(big.outputs_per_s > one.outputs_per_s * 10.0);
    }
}
