//! Property tests for the hardware models: roofline algebra, resource
//! monotonicity, and bandwidth behaviour. Runs on `rt::check`.

use ecad_hw::fpga::{FpgaDevice, FpgaModel, GridConfig, PhysicalModel};
use ecad_hw::gpu::{GpuDevice, GpuModel};
use ecad_hw::total_flops;
use rt::check::{map, select, vec, Gen};
use rt::prop_assert;

fn arb_grid() -> impl Gen<Value = GridConfig> {
    map(
        (
            select(vec![1u32, 2, 4, 8, 16]),
            select(vec![1u32, 2, 4, 8, 16]),
            select(vec![1u32, 2, 4, 8, 16]),
            select(vec![1u32, 2, 4, 8, 16]),
            select(vec![1u32, 2, 4, 8]),
        ),
        |(r, c, im, inn, v)| GridConfig::new(r, c, im, inn, v).expect("nonzero dims"),
    )
}

fn arb_layers() -> impl Gen<Value = Vec<(usize, usize, usize)>> {
    map(
        vec((1usize..96, 1usize..768, 2usize..384), 1..4),
        |mut v| {
            // Chain the shapes so they form a real MLP (n_i == k_{i+1}).
            for i in 1..v.len() {
                v[i].1 = v[i - 1].2;
                v[i].0 = v[0].0;
            }
            v
        },
    )
}

rt::prop! {
    #![cases(64)]

    /// effective GFLOP/s x time == workload FLOPs, for every feasible
    /// configuration (the model's books always balance).
    fn fpga_energy_conservation(grid in arb_grid(), layers in arb_layers(), banks in 1u32..5) {
        let model = FpgaModel::new(FpgaDevice::arria10_gx1150(banks));
        if let Ok(perf) = model.evaluate(&grid, &layers) {
            let implied = perf.effective_gflops * 1e9 * perf.total_time_s;
            let actual = total_flops(&layers);
            prop_assert!((implied - actual).abs() / actual < 1e-6);
            prop_assert!(perf.potential_gflops <= perf.compute_roofline_gflops * (1.0 + 1e-9));
            prop_assert!(perf.effective_gflops <= perf.potential_gflops * (1.0 + 1e-9));
            prop_assert!(perf.outputs_per_s > 0.0);
            prop_assert!(perf.latency_s > 0.0);
        }
    }

    /// Stratix 10 never underperforms Arria 10 on the same feasible
    /// grid and workload (more DSPs, faster clock, more bandwidth).
    fn s10_dominates_a10(grid in arb_grid(), layers in arb_layers()) {
        let a10 = FpgaModel::new(FpgaDevice::arria10_gx1150(4));
        let s10 = FpgaModel::new(FpgaDevice::stratix10_2800(4));
        if let (Ok(a), Ok(s)) = (a10.evaluate(&grid, &layers), s10.evaluate(&grid, &layers)) {
            prop_assert!(s.outputs_per_s >= a.outputs_per_s * (1.0 - 1e-9));
        }
    }

    /// Doubling every layer's batch never decreases outputs/s (more
    /// work per block-row fill).
    fn fpga_batch_monotonicity(grid in arb_grid(), layers in arb_layers()) {
        let model = FpgaModel::new(FpgaDevice::arria10_gx1150(1));
        let doubled: Vec<_> = layers.iter().map(|&(m, k, n)| (m * 2, k, n)).collect();
        if let (Ok(a), Ok(b)) = (model.evaluate(&grid, &layers), model.evaluate(&grid, &doubled)) {
            prop_assert!(b.outputs_per_s >= a.outputs_per_s * (1.0 - 1e-9),
                "batch x2: {} -> {}", a.outputs_per_s, b.outputs_per_s);
        }
    }

    /// Resource estimates are monotone: growing any grid dimension
    /// never shrinks DSP or M20K usage.
    fn resources_monotone(grid in arb_grid()) {
        let bigger = GridConfig::new(
            grid.rows() * 2,
            grid.cols(),
            grid.interleave_m(),
            grid.interleave_n(),
            grid.vec(),
        )
        .unwrap();
        prop_assert!(bigger.dsps_used() >= grid.dsps_used());
        prop_assert!(bigger.m20ks_used() >= grid.m20ks_used());
    }

    /// The physical model keeps Fmax positive and below target, power
    /// inside a sane chip envelope, and utilizations in [0, 1].
    fn physical_report_envelope(grid in arb_grid()) {
        let model = PhysicalModel::new(FpgaDevice::arria10_gx1150(1));
        if let Ok(rep) = model.report(&grid) {
            prop_assert!(rep.fmax_mhz > 0.0 && rep.fmax_mhz <= 250.0);
            prop_assert!((20.0..=36.0).contains(&rep.power_w), "power {}", rep.power_w);
            for u in [rep.resources.alm_util, rep.resources.m20k_util, rep.resources.dsp_util] {
                prop_assert!((0.0..=1.0).contains(&u));
            }
        }
    }

    /// GPU timing: time is additive over layers (running layers
    /// separately sums to running them together).
    fn gpu_time_additivity(layers in arb_layers()) {
        let model = GpuModel::new(GpuDevice::titan_x());
        let biases = vec![true; layers.len()];
        let whole = model.evaluate(&layers, &biases);
        let sum: f64 = layers
            .iter()
            .map(|&l| model.evaluate(&[l], &[true]).total_time_s)
            .sum();
        prop_assert!((whole.total_time_s - sum).abs() / sum < 1e-9);
    }

    /// GPU efficiency is bounded and decreases (weakly) when layers
    /// shrink to launch-overhead-dominated sizes.
    fn gpu_efficiency_bounds(m in 1usize..512, k in 1usize..512, n in 2usize..256) {
        let model = GpuModel::new(GpuDevice::quadro_m5000());
        let perf = model.evaluate(&[(m, k, n)], &[true]);
        prop_assert!((0.0..=1.0).contains(&perf.efficiency));
        let tiny = model.evaluate(&[(1, 1, 2)], &[true]);
        prop_assert!(tiny.efficiency <= perf.efficiency + 1e-9);
    }
}
