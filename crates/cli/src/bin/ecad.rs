//! The `ecad` command-line tool. All logic lives in `ecad_cli`; this
//! binary only bridges `std::env::args` to it.

use std::process::ExitCode;

fn main() -> ExitCode {
    match ecad_cli::run(std::env::args().skip(1)) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
