//! `ecad profile`: render a recorded profile document (written by
//! `ecad search --profile-out` or the quickstart example's
//! `--profile-out`) as a self/total attribution table, normalized JSON,
//! or collapsed-stack text for flamegraph tooling.
//!
//! Also home to [`tree_from_events`], which rebuilds an approximate
//! span tree from a JSONL event trace: span-close events recorded with
//! a tick-clock profiler attached carry `path` (semicolon-joined
//! ancestry) and `span_us` fields, enough to reconstruct per-path
//! totals and call counts (wall-clock runs omit `span_us` to keep the
//! trace reproducible, so no tree can be rebuilt). `ecad trace
//! --summary` uses it to append the same attribution table the profile
//! renderer prints.

use rt::json::Json;
use rt::prof::{profile_from_json, ProfileNode};

use crate::analyze::TraceEvent;
use crate::args::{ArgError, Parsed};
use crate::commands::CliError;

/// `ecad profile --file PROFILE.json [--format text|json|collapsed]`.
///
/// # Errors
///
/// [`CliError::Io`] when the file is unreadable, [`CliError::Domain`]
/// when it is not a schema-version-1 profile document.
pub fn cmd_profile(p: &Parsed) -> Result<String, CliError> {
    p.check_allowed(&["file", "format"])?;
    let path = p.require("file")?;
    let text = std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
    let json = Json::parse(&text)
        .map_err(|e| CliError::Domain(format!("{path}: not valid JSON: {e}")))?;
    let (clock, root) =
        profile_from_json(&json).map_err(|e| CliError::Domain(format!("{path}: {e}")))?;
    match p.get("format").unwrap_or("text") {
        "text" => Ok(format!(
            "{path}: {clock}-clock profile\n\n{}",
            root.render_table()
        )),
        // Re-emitting the parsed document normalizes formatting and
        // proves it round-trips through `rt::json`.
        "json" => Ok(json.pretty() + "\n"),
        "collapsed" => Ok(root.to_collapsed()),
        other => Err(CliError::Args(ArgError::BadValue {
            flag: "--format".to_string(),
            value: other.to_string(),
        })),
    }
}

/// Rebuilds a span-attribution tree from the `path`/`span_us` fields of
/// profiled span-close events. `None` when the trace carries no such
/// events (recorded without a profiler, or with the wall clock, which
/// omits `span_us`).
///
/// Totals come from each close's own `span_us`, so a parent that never
/// closes in the trace (the synthetic profiler root) gets the sum of
/// its children; self time is total minus child totals, exactly as in
/// the live profiler's export.
pub fn tree_from_events(events: &[TraceEvent]) -> Option<ProfileNode> {
    let mut root: Option<ProfileNode> = None;
    for e in events {
        let Some(path) = e.fields.get("path").and_then(Json::as_str) else {
            continue;
        };
        let Some(us) = e.fields.get("span_us").and_then(Json::as_f64) else {
            continue;
        };
        let parts: Vec<&str> = path.split(';').filter(|s| !s.is_empty()).collect();
        let Some((first, rest)) = parts.split_first() else {
            continue;
        };
        let root_node = root.get_or_insert_with(|| leaf(first, 1));
        if root_node.name != *first {
            // A second profiler root in the same trace; keep the first.
            continue;
        }
        let mut node = root_node;
        for part in rest {
            let idx = match node.children.iter().position(|c| c.name == **part) {
                Some(i) => i,
                None => {
                    node.children.push(leaf(part, 0));
                    node.children.len() - 1
                }
            };
            node = &mut node.children[idx];
        }
        node.total_ns += (us as u64).saturating_mul(1_000);
        node.calls += 1;
    }
    let mut root = root?;
    finalize(&mut root);
    Some(root)
}

fn leaf(name: &str, calls: u64) -> ProfileNode {
    ProfileNode {
        name: name.to_string(),
        total_ns: 0,
        self_ns: 0,
        calls,
        children: Vec::new(),
    }
}

/// Name-sorts children and derives totals/self times bottom-up.
fn finalize(node: &mut ProfileNode) {
    node.children.sort_by(|a, b| a.name.cmp(&b.name));
    for c in &mut node.children {
        finalize(c);
    }
    let child_sum: u64 = node.children.iter().map(|c| c.total_ns).sum();
    if node.total_ns == 0 && !node.children.is_empty() {
        node.total_ns = child_sum;
    }
    node.self_ns = node.total_ns.saturating_sub(child_sum);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::parse_events;

    fn close_line(seq: u64, path: &str, us: u64) -> String {
        format!(
            "{{\"seq\":{seq},\"level\":\"debug\",\"target\":\"t\",\"event\":\"x\",\"fields\":{{\
             \"path\":\"{path}\",\"span_us\":{us}}}}}"
        )
    }

    #[test]
    fn rebuilds_tree_from_span_closes() {
        let text = [
            close_line(0, "engine;evaluate;train", 30),
            close_line(1, "engine;evaluate", 50),
            close_line(2, "engine;evaluate;train", 10),
            close_line(3, "engine;evaluate", 60),
        ]
        .join("\n");
        let events = parse_events("t.jsonl", &text).unwrap();
        let tree = tree_from_events(&events).unwrap();
        assert_eq!(tree.name, "engine");
        assert_eq!(tree.total_ns, 110_000); // root = sum of children
        let eval = tree.find("evaluate").unwrap();
        assert_eq!((eval.total_ns, eval.calls), (110_000, 2));
        assert_eq!(eval.self_ns, 110_000 - 40_000);
        let train = tree.find("train").unwrap();
        assert_eq!((train.total_ns, train.self_ns, train.calls), (40_000, 40_000, 2));
    }

    #[test]
    fn unprofiled_trace_yields_no_tree() {
        let text = "{\"seq\":0,\"level\":\"info\",\"target\":\"t\",\"event\":\"a\",\"fields\":{}}";
        let events = parse_events("t.jsonl", text).unwrap();
        assert!(tree_from_events(&events).is_none());
    }

    #[test]
    fn profile_cmd_renders_all_formats() {
        use rt::prof::{profile_to_json, ClockKind};
        let dir = std::env::temp_dir().join("ecad_cli_profile_cmd");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.json");
        let tree = ProfileNode {
            name: "engine".to_string(),
            total_ns: 3_000,
            self_ns: 0,
            calls: 1,
            children: vec![ProfileNode {
                name: "gemm".to_string(),
                total_ns: 3_000,
                self_ns: 3_000,
                calls: 2,
                children: Vec::new(),
            }],
        };
        let doc = profile_to_json(ClockKind::Ticks, &tree).pretty() + "\n";
        std::fs::write(&path, &doc).unwrap();

        let argv = |s: &str| s.split_whitespace().map(String::from).collect::<Vec<_>>();
        let text = crate::run(argv(&format!("profile --file {}", path.display()))).unwrap();
        assert!(text.contains("ticks-clock profile"), "got: {text}");
        assert!(text.contains("gemm"), "got: {text}");

        let json = crate::run(argv(&format!(
            "profile --file {} --format json",
            path.display()
        )))
        .unwrap();
        assert_eq!(json, doc, "json format round-trips the document");

        let collapsed = crate::run(argv(&format!(
            "profile --file {} --format collapsed",
            path.display()
        )))
        .unwrap();
        assert_eq!(collapsed, "engine;gemm 3000\n");

        let err = crate::run(argv(&format!(
            "profile --file {} --format yaml",
            path.display()
        )))
        .unwrap_err();
        assert!(matches!(err, CliError::Args(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn profile_cmd_rejects_wrong_schema() {
        let dir = std::env::temp_dir().join("ecad_cli_profile_schema");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{\"schema_version\": 99, \"clock\": \"wall\", \"root\": {}}").unwrap();
        let argv = |s: &str| s.split_whitespace().map(String::from).collect::<Vec<_>>();
        let err = crate::run(argv(&format!("profile --file {}", path.display()))).unwrap_err();
        assert!(err.to_string().contains("schema_version"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
