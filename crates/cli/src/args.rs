//! Dependency-free argument parsing.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error produced while parsing command-line arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand was given.
    MissingCommand,
    /// The subcommand is not recognized.
    UnknownCommand(String),
    /// A flag is not recognized for this subcommand.
    UnknownFlag(String),
    /// A required flag is absent.
    MissingFlag(&'static str),
    /// A value could not be parsed.
    BadValue {
        /// Flag name.
        flag: String,
        /// Offending value.
        value: String,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingCommand => {
                write!(
                    f,
                    "missing command (try: search, datasets, devices, estimate)"
                )
            }
            ArgError::UnknownCommand(c) => write!(f, "unknown command {c:?}"),
            ArgError::UnknownFlag(flag) => write!(f, "unknown flag {flag}"),
            ArgError::MissingFlag(flag) => write!(f, "required flag {flag} is missing"),
            ArgError::BadValue { flag, value } => {
                write!(f, "cannot parse {value:?} for {flag}")
            }
        }
    }
}

impl Error for ArgError {}

/// A parsed command line: subcommand plus `--flag value` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Parsed {
    /// The subcommand (first positional argument).
    pub command: String,
    flags: HashMap<String, String>,
}

impl Parsed {
    /// Parses `argv` (without the program name). Every non-command
    /// token is a `--flag` optionally followed by a value; a flag
    /// followed by another `--flag` (or the end of the line) is a
    /// boolean switch and gets the value `"true"`, so `--metrics` and
    /// `--metrics true` are equivalent.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] for a missing command or stray positional.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Self, ArgError> {
        let mut it = argv.into_iter().peekable();
        let command = it.next().ok_or(ArgError::MissingCommand)?;
        if command.starts_with('-') {
            return Err(ArgError::MissingCommand);
        }
        let mut flags = HashMap::new();
        while let Some(tok) = it.next() {
            let Some(name) = tok.strip_prefix("--") else {
                return Err(ArgError::UnknownFlag(tok));
            };
            let value = match it.peek() {
                Some(next) if !next.starts_with("--") => it.next().expect("peeked"),
                _ => "true".to_string(),
            };
            flags.insert(name.to_string(), value);
        }
        Ok(Self { command, flags })
    }

    /// Whether a boolean switch is on: present with no value (or any
    /// value other than `"false"`).
    pub fn is_set(&self, flag: &str) -> bool {
        matches!(self.get(flag), Some(v) if v != "false")
    }

    /// A flag's raw value, if present.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    /// A required flag's raw value.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::MissingFlag`] when absent.
    pub fn require(&self, flag: &'static str) -> Result<&str, ArgError> {
        self.get(flag).ok_or(ArgError::MissingFlag(flag))
    }

    /// A parsed optional flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] when present but unparseable.
    pub fn get_parse<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, ArgError> {
        match self.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                flag: flag.to_string(),
                value: v.to_string(),
            }),
        }
    }

    /// Validates that every provided flag is in `allowed`.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::UnknownFlag`] for the first stray flag.
    pub fn check_allowed(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for k in self.flags.keys() {
            if !allowed.contains(&k.as_str()) {
                return Err(ArgError::UnknownFlag(format!("--{k}")));
            }
        }
        Ok(())
    }
}

/// Parses a comma-separated list of positive integers
/// (e.g. `--layers 784,256,10`).
///
/// # Errors
///
/// Returns [`ArgError::BadValue`] on any non-integer or zero entry.
pub fn parse_usize_list(flag: &str, text: &str) -> Result<Vec<usize>, ArgError> {
    text.split(',')
        .map(|t| {
            t.trim()
                .parse::<usize>()
                .ok()
                .filter(|&v| v > 0)
                .ok_or_else(|| ArgError::BadValue {
                    flag: flag.to_string(),
                    value: t.trim().to_string(),
                })
        })
        .collect()
}

/// Parses a grid spec `RxCxV` or `RxCxV,IMxIN`
/// (e.g. `8x8x4` or `8x8x4,16x16`), returning
/// `(rows, cols, vec, interleave_m, interleave_n)` with interleaves
/// defaulting to 4.
///
/// # Errors
///
/// Returns [`ArgError::BadValue`] on malformed specs.
pub fn parse_grid(text: &str) -> Result<(u32, u32, u32, u32, u32), ArgError> {
    let bad = || ArgError::BadValue {
        flag: "--grid".to_string(),
        value: text.to_string(),
    };
    let (dims, il) = match text.split_once(',') {
        Some((d, i)) => (d, Some(i)),
        None => (text, None),
    };
    let parts: Vec<u32> = dims
        .split('x')
        .map(|p| p.trim().parse::<u32>().map_err(|_| bad()))
        .collect::<Result<_, _>>()?;
    let [rows, cols, vec] = parts.as_slice() else {
        return Err(bad());
    };
    let (im, inn) = match il {
        None => (4, 4),
        Some(i) => {
            let ps: Vec<u32> = i
                .split('x')
                .map(|p| p.trim().parse::<u32>().map_err(|_| bad()))
                .collect::<Result<_, _>>()?;
            let [a, b] = ps.as_slice() else {
                return Err(bad());
            };
            (*a, *b)
        }
    };
    Ok((*rows, *cols, *vec, im, inn))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let p = Parsed::parse(argv("search --data x.csv --seed 7")).unwrap();
        assert_eq!(p.command, "search");
        assert_eq!(p.get("data"), Some("x.csv"));
        assert_eq!(p.get_parse("seed", 0u64).unwrap(), 7);
        assert_eq!(p.get_parse("threads", 3usize).unwrap(), 3);
    }

    #[test]
    fn missing_command_rejected() {
        assert_eq!(
            Parsed::parse(argv("")).unwrap_err(),
            ArgError::MissingCommand
        );
        assert_eq!(
            Parsed::parse(argv("--data x")).unwrap_err(),
            ArgError::MissingCommand
        );
    }

    #[test]
    fn bare_flags_are_boolean_switches() {
        let p = Parsed::parse(argv("search --metrics --seed 7 --data x.csv")).unwrap();
        assert!(p.is_set("metrics"));
        assert_eq!(p.get("metrics"), Some("true"));
        assert_eq!(p.get_parse("seed", 0u64).unwrap(), 7);
        assert_eq!(p.get("data"), Some("x.csv"));
        // Trailing bare flag, explicit values, and absence all behave.
        let q = Parsed::parse(argv("search --metrics false --trace")).unwrap();
        assert!(!q.is_set("metrics"));
        assert!(q.is_set("trace"));
        assert!(!q.is_set("absent"));
    }

    #[test]
    fn stray_positional_rejected() {
        assert!(matches!(
            Parsed::parse(argv("search oops")).unwrap_err(),
            ArgError::UnknownFlag(_)
        ));
    }

    #[test]
    fn require_and_allowed() {
        let p = Parsed::parse(argv("estimate --layers 1,2")).unwrap();
        assert_eq!(p.require("layers").unwrap(), "1,2");
        assert!(matches!(
            p.require("grid"),
            Err(ArgError::MissingFlag("grid"))
        ));
        assert!(p.check_allowed(&["layers", "grid"]).is_ok());
        assert!(matches!(
            p.check_allowed(&["grid"]),
            Err(ArgError::UnknownFlag(_))
        ));
    }

    #[test]
    fn usize_list() {
        assert_eq!(
            parse_usize_list("--layers", "784, 256,10").unwrap(),
            vec![784, 256, 10]
        );
        assert!(parse_usize_list("--layers", "a,2").is_err());
        assert!(parse_usize_list("--layers", "0").is_err());
    }

    #[test]
    fn grid_specs() {
        assert_eq!(parse_grid("8x8x4").unwrap(), (8, 8, 4, 4, 4));
        assert_eq!(parse_grid("16x8x2,32x1").unwrap(), (16, 8, 2, 32, 1));
        assert!(parse_grid("8x8").is_err());
        assert!(parse_grid("axbxc").is_err());
        assert!(parse_grid("8x8x4,9").is_err());
    }

    #[test]
    fn bad_numeric_flag() {
        let p = Parsed::parse(argv("search --seed many")).unwrap();
        assert!(matches!(
            p.get_parse("seed", 0u64),
            Err(ArgError::BadValue { .. })
        ));
    }
}
