//! Subcommand implementations.

use std::error::Error;
use std::fmt;

use ecad_core::config::FlowConfig;
use ecad_core::prelude::*;
use ecad_dataset::benchmarks::{self, Benchmark};
use ecad_dataset::csv;
use ecad_hw::cpu::{CpuDevice, CpuModel};
use ecad_hw::fpga::{FpgaDevice, FpgaModel, GridConfig, PhysicalModel};
use ecad_hw::gpu::{GpuDevice, GpuModel};

use crate::args::{parse_grid, parse_usize_list, ArgError, Parsed};

/// Error produced by a CLI run.
#[derive(Debug)]
pub enum CliError {
    /// Argument parsing failed.
    Args(ArgError),
    /// A file could not be read or written.
    Io(String),
    /// A domain error (bad config, bad CSV, infeasible grid, ...).
    Domain(String),
    /// The benchmark regression gate failed; the payload is the full
    /// rendered verdict. A distinct variant so the binary exits
    /// non-zero on a gate failure while still printing the report.
    Gate(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}\n\n{USAGE}"),
            CliError::Io(msg) => write!(f, "io error: {msg}"),
            CliError::Domain(msg) => write!(f, "{msg}"),
            CliError::Gate(report) => write!(f, "{report}"),
        }
    }
}

impl Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

const USAGE: &str = "usage:
  ecad search   --data TABLE.csv [--config ECAD.ini] [--trace OUT.csv]
                [--seed N] [--threads N] [--evaluations N]
                [--log-level trace|debug|info|warn|off]
                [--trace-out OUT.jsonl] [--metrics] [--serve ADDR]
                [--checkpoint STATE.json [--checkpoint-every N] [--resume]]
                [--halt-after N] [--eval-timeout SECS] [--max-retries N]
                [--profile-out OUT.json [--profile-clock wall|ticks]]
  ecad analyze  --file TRACE.jsonl [--format text|json|csv]
  ecad trace    --file TRACE.jsonl [--require EVENT1,EVENT2,...] [--summary]
  ecad profile  --file PROFILE.json [--format text|json|collapsed]
  ecad datasets [--generate NAME --out FILE [--samples N] [--seed N]]
  ecad devices
  ecad estimate --layers 784,256,10 [--device NAME] [--batch N]
                [--grid RxCxV[,IMxIN]] [--banks N]
  ecad bench run   --suite NAME|all [--filter SUBSTR] [--quick] [--profile]
                   [--iters N] [--sample-size N] [--out FILE] [--dir DIR]
  ecad bench list  [--limit N] [--dir DIR] [--format text|json]
  ecad bench trend [--suite NAME] [--filter SUBSTR] [--window N]
                   [--dir DIR] [--format text|json]
  ecad bench gate  [--suite NAME] [--filter SUBSTR]
                   [--threshold-p95-ms MS] [--max-p95-regression-pct PCT]
                   [--window-size N] [--required-passes N]
                   [--dir DIR] [--format text|json]
  ecad cluster worker --listen HOST:PORT [--log-level L] [--serve ADDR]
                   [--max-frame BYTES] [--io-timeout SECS] [--idle-timeout SECS]
  ecad cluster search --workers HOST:PORT,... [all `ecad search` flags]
                   [--net-timeout SECS] [--connect-retries N]
                   [--reconnect-backoff-ms MS] [--island-every N] [--island-k N]
                   (--serve ADDR also exposes per-worker /workers JSON)";

/// Runs the CLI against `argv` (program name excluded), returning the
/// text to print.
///
/// # Errors
///
/// Returns [`CliError`] on bad arguments, I/O failures, or domain
/// errors; the binary prints it and exits non-zero.
pub fn run<I: IntoIterator<Item = String>>(argv: I) -> Result<String, CliError> {
    let mut it = argv.into_iter().peekable();
    if it.peek().map(String::as_str) == Some("bench") {
        // `bench` has its own action verb (run/list/trend/gate):
        // strip the `bench` token and let the action land in the
        // ordinary parser's command position.
        it.next();
        return crate::bench_cmd::cmd_bench(it);
    }
    if it.peek().map(String::as_str) == Some("cluster") {
        // Same trick for `cluster worker` / `cluster search`.
        it.next();
        let parsed = Parsed::parse(it)?;
        return match parsed.command.as_str() {
            "worker" => cmd_cluster_worker(&parsed),
            // The coordinator is an ordinary search with remote slots:
            // `cmd_search` grows the cluster flags.
            "search" => cmd_search(&parsed),
            other => Err(ArgError::UnknownCommand(format!("cluster {other}")).into()),
        };
    }
    let parsed = Parsed::parse(it)?;
    match parsed.command.as_str() {
        "search" => cmd_search(&parsed),
        "analyze" => crate::analyze::cmd_analyze(&parsed),
        "trace" => cmd_trace(&parsed),
        "profile" => crate::profile::cmd_profile(&parsed),
        "datasets" => cmd_datasets(&parsed),
        "devices" => Ok(cmd_devices()),
        "estimate" => cmd_estimate(&parsed),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(ArgError::UnknownCommand(other.to_string()).into()),
    }
}

/// Builds the observability handle from the search telemetry flags:
/// `--log-level` attaches a stderr pretty-printer, `--trace-out` a
/// deterministic JSONL file sink recording debug and above, and
/// `--metrics` enables the registry even with no sink. With none of
/// the three, observability is disabled outright (zero overhead) —
/// unless `force_metrics` is set (`--serve` needs a live registry for
/// the `/metrics` endpoint even when nothing else asked for one).
/// Under `--resume` the JSONL sink appends, continuing the sequence
/// numbers of the interrupted run's file so the resumed trace is
/// byte-identical to an uninterrupted one. A `--profile-out` profiler
/// rides along on the handle so the engine and its workers install it
/// and span closes feed the attribution tree.
fn build_obs(
    p: &Parsed,
    force_metrics: bool,
    profiler: Option<rt::prof::Profiler>,
) -> Result<rt::obs::Obs, CliError> {
    use rt::obs::{JsonlSink, Level, Obs, StderrSink};
    let level_text = p.get("log-level");
    let trace_out = p.get("trace-out");
    if level_text.is_none()
        && trace_out.is_none()
        && !p.is_set("metrics")
        && !force_metrics
        && profiler.is_none()
    {
        return Ok(Obs::disabled());
    }
    let mut builder = Obs::builder();
    if let Some(prof) = profiler {
        builder = builder.profiler(prof);
    }
    match level_text {
        None | Some("off") => {}
        Some(text) => {
            let level = Level::parse(text).ok_or_else(|| {
                CliError::Args(ArgError::BadValue {
                    flag: "--log-level".to_string(),
                    value: text.to_string(),
                })
            })?;
            builder = builder.sink(StderrSink::new(level));
        }
    }
    if let Some(path) = trace_out {
        let path_ref = std::path::Path::new(path);
        let sink = if p.is_set("resume") {
            JsonlSink::append(Level::Debug, path_ref)
        } else {
            JsonlSink::create(Level::Debug, path_ref)
        }
        .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
        builder = builder.sink(sink);
    }
    Ok(builder.build())
}

fn cmd_search(p: &Parsed) -> Result<String, CliError> {
    p.check_allowed(&[
        "data",
        "config",
        "trace",
        "seed",
        "threads",
        "evaluations",
        "log-level",
        "trace-out",
        "metrics",
        "checkpoint",
        "checkpoint-every",
        "resume",
        "halt-after",
        "eval-timeout",
        "max-retries",
        "serve",
        "profile-out",
        "profile-clock",
        "workers",
        "net-timeout",
        "connect-retries",
        "reconnect-backoff-ms",
        "island-every",
        "island-k",
    ])?;
    if p.is_set("resume") && p.get("checkpoint").is_none() {
        return Err(CliError::Domain(
            "--resume requires --checkpoint <path>".to_string(),
        ));
    }
    let profile_out = p.get("profile-out");
    if p.get("profile-clock").is_some() && profile_out.is_none() {
        return Err(CliError::Domain(
            "--profile-clock requires --profile-out <path>".to_string(),
        ));
    }
    let profiler = match profile_out {
        Some(_) => {
            let clock_text = p.get("profile-clock").unwrap_or("wall");
            let clock = rt::prof::ClockKind::parse(clock_text).ok_or_else(|| {
                CliError::Args(ArgError::BadValue {
                    flag: "--profile-clock".to_string(),
                    value: clock_text.to_string(),
                })
            })?;
            Some(rt::prof::Profiler::new(clock))
        }
        None => None,
    };
    let cluster_options = match p.get("workers") {
        Some(list) => {
            let workers: Vec<String> = list
                .split(',')
                .map(str::trim)
                .filter(|w| !w.is_empty())
                .map(str::to_string)
                .collect();
            if workers.is_empty() {
                return Err(CliError::Args(ArgError::BadValue {
                    flag: "--workers".to_string(),
                    value: list.to_string(),
                }));
            }
            let mut options = ecad_core::cluster::ClusterOptions {
                workers,
                ..ecad_core::cluster::ClusterOptions::default()
            };
            if let Some(secs) = parse_seconds(p, "net-timeout")? {
                options.net_timeout = secs;
            }
            options.connect_retries = p.get_parse("connect-retries", options.connect_retries)?;
            options.reconnect_backoff = std::time::Duration::from_millis(p.get_parse(
                "reconnect-backoff-ms",
                options.reconnect_backoff.as_millis() as u64,
            )?);
            options.island_every = p.get_parse("island-every", options.island_every)?;
            options.island_k = p.get_parse("island-k", options.island_k)?;
            Some(options)
        }
        None => {
            for flag in [
                "net-timeout",
                "connect-retries",
                "reconnect-backoff-ms",
                "island-every",
                "island-k",
            ] {
                if p.get(flag).is_some() {
                    return Err(CliError::Domain(format!(
                        "--{flag} requires --workers <host:port,...>"
                    )));
                }
            }
            None
        }
    };
    let serve_addr = p.get("serve");
    let obs = build_obs(p, serve_addr.is_some(), profiler.clone())?;
    let data_path = p.require("data")?;
    let dataset = csv::read_dataset_file(data_path).map_err(|e| CliError::Domain(e.to_string()))?;
    let mut config = match p.get("config") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| CliError::Io(e.to_string()))?;
            FlowConfig::from_ini(&text).map_err(|e| CliError::Domain(e.to_string()))?
        }
        None => FlowConfig::default(),
    };
    config.evolution.seed = p.get_parse("seed", config.evolution.seed)?;
    config.evolution.threads = p.get_parse("threads", config.evolution.threads)?;
    config.evolution.evaluations = p.get_parse("evaluations", config.evolution.evaluations)?;
    if let Some(secs) = p.get("eval-timeout") {
        let secs = secs.parse::<f64>().ok().filter(|s| s.is_finite() && *s >= 0.0).ok_or_else(|| {
            CliError::Args(ArgError::BadValue {
                flag: "--eval-timeout".to_string(),
                value: secs.to_string(),
            })
        })?;
        config.evolution.eval_timeout = if secs > 0.0 {
            Some(std::time::Duration::from_secs_f64(secs))
        } else {
            None
        };
    }
    config.evolution.max_retries = p.get_parse("max-retries", config.evolution.max_retries)?;

    let mut search = Search::from_config(&config, &dataset).obs(obs.clone());
    let mut cluster_health = None;
    if let Some(options) = cluster_options {
        let health = std::sync::Arc::new(ClusterHealth::new(&options.workers));
        cluster_health = Some(std::sync::Arc::clone(&health));
        search = search.cluster(options).cluster_health(health);
    }
    let checkpoint_path = p.get("checkpoint").map(std::path::PathBuf::from);
    if let Some(path) = &checkpoint_path {
        let every: usize = p.get_parse("checkpoint-every", 25usize)?;
        if every == 0 {
            return Err(CliError::Args(ArgError::BadValue {
                flag: "--checkpoint-every".to_string(),
                value: "0".to_string(),
            }));
        }
        search = search.checkpoint(CheckpointPolicy::new(path.clone(), every));
    }
    if p.is_set("resume") {
        let path = checkpoint_path.as_ref().ok_or_else(|| {
            CliError::Domain("--resume requires --checkpoint <path>".to_string())
        })?;
        let state = CheckpointState::load(path)
            .map_err(|e| CliError::Domain(format!("{}: {e}", path.display())))?;
        search = search.resume_from(state);
    }
    if let Some(n) = p.get("halt-after") {
        let n: usize = n.parse().map_err(|_| {
            CliError::Args(ArgError::BadValue {
                flag: "--halt-after".to_string(),
                value: n.to_string(),
            })
        })?;
        search = search.halt_after(n);
    }
    // SIGINT/SIGTERM wind the run down at the next safe boundary (and
    // write a final checkpoint when a policy is attached).
    let shutdown = rt::supervise::ShutdownFlag::new();
    shutdown.install_termination_handler();
    search = search.shutdown_flag(shutdown);

    // The observatory serves /metrics, /status, and /healthz for the
    // duration of the run (plus /workers in cluster mode). It only
    // *reads* engine state (the metrics registry, the shared status
    // cell, and the cluster health registry), so a served run's event
    // trace stays byte-identical to an unserved one.
    let server = match serve_addr {
        Some(addr) => {
            let status = StatusCell::new();
            search = search.status(status.clone());
            let routes = match &cluster_health {
                Some(health) => {
                    cluster_observatory(&obs, &status, std::sync::Arc::clone(health))
                }
                None => observatory(&obs, &status),
            };
            let handle = routes
                .bind(addr)
                .map_err(|e| CliError::Io(format!("--serve {addr}: {e}")))?;
            eprintln!("observatory listening on http://{}/", handle.addr());
            Some(handle)
        }
        None => None,
    };

    let result = search
        .try_run()
        .map_err(|e| CliError::Domain(format!("checkpoint: {e}")))?;

    let mut out = String::new();
    out.push_str(&format!(
        "dataset {} ({} samples x {} features, {} classes) on {}\n\n",
        dataset.name(),
        dataset.len(),
        dataset.n_features(),
        dataset.n_classes(),
        result.target_name()
    ));
    if let Some(best) = result.best() {
        out.push_str(&format!(
            "best candidate : {}\n  accuracy  {:.4}\n  outputs/s {:.3e}\n  latency   {:.2e} s\n  efficiency {:.1}%\n\n",
            best.genome,
            best.measurement.accuracy,
            best.measurement.hw.outputs_per_s(),
            best.measurement.hw.latency_s(),
            100.0 * best.measurement.hw.efficiency(),
        ));
    }
    out.push_str("pareto frontier (accuracy, outputs/s, genome):\n");
    for e in result.pareto_accuracy_throughput() {
        out.push_str(&format!(
            "  {:.4}  {:>12.3e}  {}\n",
            e.measurement.accuracy,
            e.measurement.hw.outputs_per_s(),
            e.genome
        ));
    }
    let stats = result.stats();
    out.push_str(&format!(
        "\n{} models evaluated ({} cache hits, {} infeasible), avg {:.3}s/model, wall {:.1}s\n",
        stats.models_evaluated,
        stats.cache_hits,
        stats.infeasible_count,
        stats.avg_eval_time_s,
        stats.wall_time_s
    ));
    if stats.retry_count + stats.timeout_count + stats.respawn_count > 0 {
        out.push_str(&format!(
            "fault tolerance: {} retries, {} timeouts, {} worker respawns\n",
            stats.retry_count, stats.timeout_count, stats.respawn_count
        ));
    }
    if result.halted() {
        match &checkpoint_path {
            Some(path) => out.push_str(&format!(
                "halted early; resume with --checkpoint {} --resume\n",
                path.display()
            )),
            None => out.push_str("halted early (no checkpoint attached)\n"),
        }
    } else if let Some(path) = &checkpoint_path {
        out.push_str(&format!("checkpoint written to {}\n", path.display()));
    }
    if let Some(path) = p.get("trace") {
        std::fs::write(path, result.trace_csv()).map_err(|e| CliError::Io(e.to_string()))?;
        out.push_str(&format!("trace written to {path}\n"));
    }
    if p.is_set("metrics") {
        out.push_str("\nrun metrics (per-stage timing from the span histograms):\n");
        out.push_str(&rt::obs::summary_table(&obs.snapshot()));
    }
    if let Some(path) = p.get("trace-out") {
        obs.flush();
        out.push_str(&format!("event trace written to {path}\n"));
    }
    if let (Some(path), Some(profiler)) = (profile_out, &profiler) {
        let report = profiler.report();
        let doc = rt::prof::profile_to_json(profiler.clock(), &report);
        std::fs::write(path, doc.pretty() + "\n")
            .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
        out.push_str(&format!(
            "\nprofile ({} clock) written to {path}\n\n{}",
            profiler.clock().name(),
            report.render_table()
        ));
    }
    if let Some(handle) = server {
        out.push_str(&format!(
            "observatory served on http://{}/ (stopped)\n",
            handle.addr()
        ));
        handle.stop();
    }
    Ok(out)
}

/// Parses a `--flag SECS` duration given as (possibly fractional)
/// seconds; `None` when the flag is absent.
fn parse_seconds(p: &Parsed, flag: &str) -> Result<Option<std::time::Duration>, CliError> {
    match p.get(flag) {
        None => Ok(None),
        Some(text) => text
            .parse::<f64>()
            .ok()
            .filter(|s| s.is_finite() && *s > 0.0)
            .map(std::time::Duration::from_secs_f64)
            .map(Some)
            .ok_or_else(|| {
                CliError::Args(ArgError::BadValue {
                    flag: format!("--{flag}"),
                    value: text.to_string(),
                })
            }),
    }
}

/// `ecad cluster worker`: serves genome-evaluation jobs to a remote
/// coordinator until a `kill_all` arrives or the process receives
/// SIGINT/SIGTERM. One session at a time, matching the coordinator's
/// one-job-per-connection dispatch.
fn cmd_cluster_worker(p: &Parsed) -> Result<String, CliError> {
    p.check_allowed(&[
        "listen",
        "log-level",
        "max-frame",
        "io-timeout",
        "idle-timeout",
        "serve",
    ])?;
    let addr = p.require("listen")?;
    let mut options = ecad_core::cluster::WorkerOptions::default();
    options.max_frame = p.get_parse("max-frame", options.max_frame)?;
    if let Some(secs) = parse_seconds(p, "io-timeout")? {
        options.io_timeout = secs;
    }
    if let Some(secs) = parse_seconds(p, "idle-timeout")? {
        options.idle_timeout = secs;
    }
    let serve_addr = p.get("serve");
    let obs = build_obs(p, serve_addr.is_some(), None)?;
    // The worker-side observatory: /healthz for liveness probes and
    // /metrics for the worker's own registry (`worker.*` families).
    let observer = match serve_addr {
        Some(serve) => {
            let handle = observatory(&obs, &StatusCell::new())
                .bind(serve)
                .map_err(|e| CliError::Io(format!("--serve {serve}: {e}")))?;
            eprintln!("worker observatory listening on http://{}/", handle.addr());
            Some(handle)
        }
        None => None,
    };
    let server = ecad_core::cluster::WorkerServer::bind(addr, options, obs)
        .map_err(|e| CliError::Io(format!("--listen {addr}: {e}")))?;
    let local = server
        .local_addr()
        .map_err(|e| CliError::Io(e.to_string()))?;
    eprintln!("cluster worker listening on {local}");

    // SIGINT/SIGTERM trip the server's stop flag so the accept loop
    // winds down at its next poll instead of dying mid-session.
    let shutdown = rt::supervise::ShutdownFlag::new();
    shutdown.install_termination_handler();
    let stop = server.stop_handle();
    std::thread::spawn(move || {
        while !shutdown.is_requested() {
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
        stop.store(true, std::sync::atomic::Ordering::Release);
    });

    server.run().map_err(|e| CliError::Io(e.to_string()))?;
    if let Some(handle) = observer {
        handle.stop();
    }
    Ok(format!("cluster worker on {local} stopped\n"))
}

/// `ecad trace`: validates a JSONL event trace written by
/// `--trace-out`. Every line must parse via `rt::json` with the stable
/// schema (`seq`/`level`/`target`/`event`/`fields`) and consecutive
/// sequence numbers; prints a per-event-kind census. With `--summary`,
/// appends the per-kind sequence-span table from the analyze machinery.
fn cmd_trace(p: &Parsed) -> Result<String, CliError> {
    p.check_allowed(&["file", "require", "summary"])?;
    let path = p.require("file")?;
    let text = std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;

    let mut counts: Vec<(String, usize)> = Vec::new();
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        let json = rt::json::Json::parse(line).map_err(|e| {
            CliError::Domain(format!("{path}:{}: not valid JSON: {e}", i + 1))
        })?;
        let field = |key: &str| {
            json.get(key)
                .ok_or_else(|| CliError::Domain(format!("{path}:{}: missing {key:?}", i + 1)))
        };
        let seq = field("seq")?.as_f64().unwrap_or(-1.0);
        if seq != i as f64 {
            return Err(CliError::Domain(format!(
                "{path}:{}: seq {seq} out of order (expected {i})",
                i + 1
            )));
        }
        let level = field("level")?
            .as_str()
            .map(str::to_string)
            .unwrap_or_default();
        if rt::obs::Level::parse(&level).is_none() {
            return Err(CliError::Domain(format!(
                "{path}:{}: unknown level {level:?}",
                i + 1
            )));
        }
        field("target")?;
        field("fields")?;
        let event = field("event")?
            .as_str()
            .map(str::to_string)
            .unwrap_or_default();
        match counts.iter_mut().find(|(name, _)| *name == event) {
            Some((_, n)) => *n += 1,
            None => counts.push((event, 1)),
        }
        lines += 1;
    }

    if let Some(required) = p.get("require") {
        for want in required.split(',').map(str::trim).filter(|w| !w.is_empty()) {
            if !counts.iter().any(|(name, _)| name == want) {
                return Err(CliError::Domain(format!(
                    "{path}: required event kind {want:?} never occurs"
                )));
            }
        }
    }

    let mut out = format!("{path}: {lines} events, all lines parse\n\n");
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for (name, n) in &counts {
        out.push_str(&format!("  {n:>6}  {name}\n"));
    }
    if p.is_set("summary") {
        let events = crate::analyze::parse_events(path, &text)?;
        out.push('\n');
        out.push_str(&crate::analyze::kind_summary(&events));
        // Traces recorded with a tick-clock profiler attached carry
        // path/span_us on span closes; rebuild the attribution tree.
        if let Some(tree) = crate::profile::tree_from_events(&events) {
            out.push_str("\nspan attribution (rebuilt from profiled span closes):\n");
            out.push_str(&tree.render_table());
        }
    }
    Ok(out)
}

fn cmd_datasets(p: &Parsed) -> Result<String, CliError> {
    p.check_allowed(&["generate", "out", "samples", "seed"])?;
    match p.get("generate") {
        None => {
            let mut out = String::from(
                "built-in benchmark stand-ins (generate with: ecad datasets --generate NAME --out FILE):\n\n",
            );
            out.push_str(&format!(
                "{:<15} {:>9} {:>9} {:>8}   paper ECAD acc\n",
                "name", "features", "classes", "default"
            ));
            for b in Benchmark::ALL {
                out.push_str(&format!(
                    "{:<15} {:>9} {:>9} {:>8}   {:.4}\n",
                    b.name(),
                    b.n_features(),
                    b.n_classes(),
                    benchmarks::default_samples(b),
                    b.paper_ecad_accuracy()
                ));
            }
            Ok(out)
        }
        Some(name) => {
            let b = Benchmark::from_name(name).ok_or_else(|| {
                CliError::Domain(format!(
                    "unknown benchmark {name:?}; run `ecad datasets` for the list"
                ))
            })?;
            let out_path = p.require("out")?;
            let samples = p.get_parse("samples", benchmarks::default_samples(b))?;
            let seed = p.get_parse("seed", 0u64)?;
            let ds = benchmarks::load(b)
                .with_samples(samples)
                .with_seed(seed)
                .generate();
            csv::write_dataset_file(&ds, out_path).map_err(|e| CliError::Io(e.to_string()))?;
            Ok(format!(
                "wrote {} ({} samples x {} features) to {}\n",
                b.name(),
                ds.len(),
                ds.n_features(),
                out_path
            ))
        }
    }
}

fn cmd_devices() -> String {
    let mut out = String::from("device catalog:\n\nFPGA (hardware-database + physical workers):\n");
    for (d, banks) in [
        (FpgaDevice::arria10_gx1150(1), 1u32),
        (FpgaDevice::stratix10_2800(4), 4),
    ] {
        out.push_str(&format!(
            "  {:<18} {:>5} DSPs  {:>6.0} MHz  {:>7.2} TFLOP/s peak  {} DDR bank(s), {:.1} GB/s\n",
            d.name,
            d.dsp_blocks,
            d.clock_mhz,
            d.peak_flops() / 1e12,
            banks,
            d.ddr.bytes_per_s() / 1e9,
        ));
    }
    out.push_str("\nGPU (simulation worker):\n");
    for d in [
        GpuDevice::quadro_m5000(),
        GpuDevice::titan_x(),
        GpuDevice::radeon_vii(),
    ] {
        out.push_str(&format!(
            "  {:<18} {:>7.2} TFLOP/s  {:>6.0} GB/s  {:>4.0} W board\n",
            d.name, d.peak_tflops, d.mem_gb_per_s, d.board_power_w
        ));
    }
    out.push_str("\nCPU (simulation worker):\n");
    for d in [CpuDevice::xeon_22c(), CpuDevice::desktop_8c()] {
        out.push_str(&format!(
            "  {:<18} {:>7.2} TFLOP/s  {:>6.0} GB/s  {:>4.0} W TDP\n",
            d.name,
            d.peak_flops() / 1e12,
            d.mem_gb_per_s,
            d.tdp_w
        ));
    }
    out
}

fn cmd_estimate(p: &Parsed) -> Result<String, CliError> {
    p.check_allowed(&["layers", "device", "batch", "grid", "banks"])?;
    let widths = parse_usize_list("--layers", p.require("layers")?)?;
    if widths.len() < 2 {
        return Err(CliError::Domain(
            "--layers needs at least input and output widths (e.g. 784,256,10)".to_string(),
        ));
    }
    let batch: usize = p.get_parse("batch", 16usize)?;
    let shapes: Vec<(usize, usize, usize)> =
        widths.windows(2).map(|w| (batch, w[0], w[1])).collect();
    let biases = vec![true; shapes.len()];
    let device = p.get("device").unwrap_or("arria10");
    let banks: u32 = p.get_parse("banks", 1u32)?;

    let mut out = format!(
        "MLP {} @ batch {batch}: {} GEMM layer(s), {:.3} MFLOP/run\n\n",
        widths
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join("-"),
        shapes.len(),
        ecad_hw::total_flops(&shapes) / 1e6
    );
    match device {
        "arria10" | "stratix10" => {
            let dev = if device == "arria10" {
                FpgaDevice::arria10_gx1150(banks)
            } else {
                FpgaDevice::stratix10_2800(banks)
            };
            let (r, c, v, im, inn) = parse_grid(p.get("grid").unwrap_or("8x8x4"))?;
            let grid =
                GridConfig::new(r, c, im, inn, v).map_err(|e| CliError::Domain(e.to_string()))?;
            let perf = FpgaModel::new(dev.clone())
                .evaluate(&grid, &shapes)
                .map_err(|e| CliError::Domain(e.to_string()))?;
            let phys = PhysicalModel::new(dev.clone())
                .report(&grid)
                .map_err(|e| CliError::Domain(e.to_string()))?;
            out.push_str(&format!(
                "{} grid {} ({} DSPs)\n  outputs/s   {:.3e}\n  latency     {:.2e} s\n  effective   {:.1} GFLOP/s (potential {:.1}, efficiency {:.1}%)\n  bandwidth   {}\n  physical    {:.0} MHz Fmax, {:.1} W, DSP {:.1}% / M20K {:.1}% / ALM {:.1}%\n",
                dev.name,
                grid.describe(),
                grid.dsps_used(),
                perf.outputs_per_s,
                perf.latency_s,
                perf.effective_gflops,
                perf.potential_gflops,
                100.0 * perf.efficiency,
                if perf.bandwidth_bound { "BOUND (add banks or interleave)" } else { "ok" },
                phys.fmax_mhz,
                phys.power_w,
                100.0 * phys.resources.dsp_util,
                100.0 * phys.resources.m20k_util,
                100.0 * phys.resources.alm_util,
            ));
        }
        "m5000" | "titanx" | "radeonvii" => {
            let dev = match device {
                "m5000" => GpuDevice::quadro_m5000(),
                "titanx" => GpuDevice::titan_x(),
                _ => GpuDevice::radeon_vii(),
            };
            let perf = GpuModel::new(dev.clone()).evaluate(&shapes, &biases);
            out.push_str(&format!(
                "{}\n  outputs/s   {:.3e}\n  latency     {:.2e} s\n  effective   {:.1} GFLOP/s (efficiency {:.2}%)\n  kernels     {}\n",
                dev.name,
                perf.outputs_per_s,
                perf.latency_s,
                perf.effective_gflops,
                100.0 * perf.efficiency,
                perf.kernels,
            ));
        }
        "xeon" | "desktop" => {
            let dev = if device == "xeon" {
                CpuDevice::xeon_22c()
            } else {
                CpuDevice::desktop_8c()
            };
            let perf = CpuModel::new(dev.clone()).evaluate(&shapes, &biases);
            out.push_str(&format!(
                "{}\n  outputs/s   {:.3e}\n  latency     {:.2e} s\n  effective   {:.1} GFLOP/s (efficiency {:.2}%)\n  BLAS calls  {}\n",
                dev.name,
                perf.outputs_per_s,
                perf.latency_s,
                perf.effective_gflops,
                100.0 * perf.efficiency,
                perf.calls,
            ));
        }
        other => {
            return Err(CliError::Domain(format!(
                "unknown device {other:?}; run `ecad devices` for the catalog"
            )))
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn help_prints_usage() {
        let out = run(argv("help")).unwrap();
        assert!(out.contains("ecad search"));
    }

    #[test]
    fn unknown_command_is_error() {
        assert!(matches!(
            run(argv("frobnicate")),
            Err(CliError::Args(ArgError::UnknownCommand(_)))
        ));
    }

    #[test]
    fn devices_lists_catalog() {
        let out = cmd_devices();
        assert!(out.contains("Arria 10 GX 1150"));
        assert!(out.contains("Stratix 10 2800"));
        assert!(out.contains("Titan X"));
        assert!(out.contains("Xeon 22-core"));
    }

    #[test]
    fn datasets_lists_benchmarks() {
        let out = run(argv("datasets")).unwrap();
        for b in Benchmark::ALL {
            assert!(out.contains(b.name()), "missing {b}");
        }
    }

    #[test]
    fn datasets_generates_csv() {
        let dir = std::env::temp_dir().join("ecad_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("credit.csv");
        let out = run(argv(&format!(
            "datasets --generate credit-g --out {} --samples 50 --seed 3",
            path.display()
        )))
        .unwrap();
        assert!(out.contains("wrote credit-g"));
        let ds = csv::read_dataset_file(&path).unwrap();
        assert_eq!(ds.len(), 50);
        assert_eq!(ds.n_features(), 20);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn estimate_fpga_reports_roofline() {
        let out = run(argv("estimate --layers 784,256,10 --grid 8x8x4 --batch 32")).unwrap();
        assert!(out.contains("Arria 10"));
        assert!(out.contains("outputs/s"));
        assert!(out.contains("Fmax"));
    }

    #[test]
    fn estimate_gpu_and_cpu() {
        let gpu = run(argv(
            "estimate --layers 561,128,6 --device titanx --batch 256",
        ))
        .unwrap();
        assert!(gpu.contains("Titan X"));
        let cpu = run(argv(
            "estimate --layers 561,128,6 --device xeon --batch 256",
        ))
        .unwrap();
        assert!(cpu.contains("Xeon"));
        assert!(cpu.contains("BLAS calls"));
    }

    #[test]
    fn estimate_rejects_single_width() {
        assert!(matches!(
            run(argv("estimate --layers 784")),
            Err(CliError::Domain(_))
        ));
    }

    #[test]
    fn estimate_rejects_oversized_grid() {
        let err = run(argv("estimate --layers 8,4 --grid 32x32x16")).unwrap_err();
        assert!(matches!(err, CliError::Domain(_)));
        assert!(err.to_string().contains("DSP"));
    }

    #[test]
    fn search_end_to_end_from_files() {
        let dir = std::env::temp_dir().join("ecad_cli_search_test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("toy.csv");
        let cfg = dir.join("toy.ini");
        let ds = ecad_dataset::synth::SyntheticSpec::new("toy", 120, 6, 2)
            .with_seed(1)
            .generate();
        csv::write_dataset_file(&ds, &data).unwrap();
        std::fs::write(
            &cfg,
            "[nna]\nmax_layers = 1\nmax_neurons = 12\n[optimization]\nevaluations = 6\npopulation = 4\nepochs = 3\n",
        )
        .unwrap();
        let trace = dir.join("trace.csv");
        let out = run(argv(&format!(
            "search --data {} --config {} --trace {} --seed 5",
            data.display(),
            cfg.display(),
            trace.display()
        )))
        .unwrap();
        assert!(out.contains("best candidate"));
        assert!(out.contains("6 models evaluated"));
        let trace_text = std::fs::read_to_string(&trace).unwrap();
        assert!(trace_text.starts_with("index,accuracy"));
        assert_eq!(trace_text.lines().count(), 7); // header + 6 evals
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn search_requires_data_flag() {
        assert!(matches!(
            run(argv("search")),
            Err(CliError::Args(ArgError::MissingFlag("data")))
        ));
    }

    /// End-to-end observability path: a seeded search with
    /// `--trace-out` and `--metrics` writes a JSONL event stream the
    /// `trace` subcommand accepts, and prints the metrics table.
    #[test]
    fn search_emits_jsonl_trace_and_metrics() {
        let dir = std::env::temp_dir().join("ecad_cli_obs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("toy.csv");
        let cfg = dir.join("toy.ini");
        let ds = ecad_dataset::synth::SyntheticSpec::new("toy", 120, 6, 2)
            .with_seed(1)
            .generate();
        csv::write_dataset_file(&ds, &data).unwrap();
        std::fs::write(
            &cfg,
            "[nna]\nmax_layers = 1\nmax_neurons = 12\n[optimization]\nevaluations = 6\npopulation = 4\nepochs = 3\n",
        )
        .unwrap();
        let jsonl = dir.join("events.jsonl");
        let out = run(argv(&format!(
            "search --data {} --config {} --seed 5 --threads 1 --trace-out {} --metrics",
            data.display(),
            cfg.display(),
            jsonl.display()
        )))
        .unwrap();
        assert!(out.contains("run metrics"));
        assert!(out.contains("span.train_s"));
        assert!(out.contains("engine.models_evaluated"));
        assert!(out.contains("event trace written"));

        // The emitted stream satisfies the validator, including the
        // lifecycle kinds the engine promises.
        let report = run(argv(&format!(
            "trace --file {} --require search_start,submit,evaluated,search_end",
            jsonl.display()
        )))
        .unwrap();
        assert!(report.contains("all lines parse"));
        assert!(report.contains("search_start"));

        // A kind that never occurs is an error.
        let err = run(argv(&format!(
            "trace --file {} --require no_such_event",
            jsonl.display()
        )))
        .unwrap_err();
        assert!(err.to_string().contains("no_such_event"));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Picks a loopback port by binding an ephemeral listener and
    /// releasing it for the CLI worker to claim. The coordinator's
    /// connect-retry budget absorbs the handover window.
    fn free_port() -> u16 {
        std::net::TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap()
            .port()
    }

    /// End-to-end cluster path through the CLI: `ecad cluster worker`
    /// serves a seeded `ecad cluster search`, the coordinator's JSONL
    /// trace is byte-identical to the plain local run's, and the
    /// `trace` validator pins the lifecycle kinds. A second run with
    /// islands enabled pins the `migration` event kind.
    #[test]
    fn cluster_search_loopback_matches_local_and_pins_trace_kinds() {
        let dir = std::env::temp_dir().join("ecad_cli_cluster_test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("toy.csv");
        let cfg = dir.join("toy.ini");
        let ds = ecad_dataset::synth::SyntheticSpec::new("toy", 120, 6, 2)
            .with_seed(1)
            .generate();
        csv::write_dataset_file(&ds, &data).unwrap();
        std::fs::write(
            &cfg,
            "[nna]\nmax_layers = 1\nmax_neurons = 12\n[optimization]\nevaluations = 8\npopulation = 4\nepochs = 3\n",
        )
        .unwrap();
        let base = format!(
            "--data {} --config {} --seed 5 --threads 1",
            data.display(),
            cfg.display()
        );

        let local_jsonl = dir.join("local.jsonl");
        run(argv(&format!(
            "search {base} --trace-out {}",
            local_jsonl.display()
        )))
        .unwrap();

        let port = free_port();
        let worker =
            std::thread::spawn(move || run(argv(&format!("cluster worker --listen 127.0.0.1:{port}"))));
        let cluster_jsonl = dir.join("cluster.jsonl");
        let out = run(argv(&format!(
            "cluster search {base} --workers 127.0.0.1:{port} --connect-retries 6 --trace-out {}",
            cluster_jsonl.display()
        )))
        .unwrap();
        assert!(out.contains("models evaluated"));
        // The coordinator's kill_all stops the worker's serve loop.
        let worker_out = worker.join().unwrap().unwrap();
        assert!(worker_out.contains("stopped"));

        assert_eq!(
            std::fs::read_to_string(&local_jsonl).unwrap(),
            std::fs::read_to_string(&cluster_jsonl).unwrap(),
            "single-worker cluster trace must match the local run byte-for-byte"
        );
        let report = run(argv(&format!(
            "trace --file {} --require search_start,submit,evaluated,search_end",
            cluster_jsonl.display()
        )))
        .unwrap();
        assert!(report.contains("all lines parse"));

        // Islands on: elite migrants fold into the coordinator and the
        // validator sees the `migration` kind.
        let port = free_port();
        let worker =
            std::thread::spawn(move || run(argv(&format!("cluster worker --listen 127.0.0.1:{port}"))));
        let island_jsonl = dir.join("island.jsonl");
        run(argv(&format!(
            "cluster search {base} --workers 127.0.0.1:{port} --connect-retries 6 \
             --island-every 2 --island-k 1 --trace-out {}",
            island_jsonl.display()
        )))
        .unwrap();
        worker.join().unwrap().unwrap();
        let report = run(argv(&format!(
            "trace --file {} --require migration",
            island_jsonl.display()
        )))
        .unwrap();
        assert!(report.contains("migration"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cluster_args_are_validated() {
        assert!(matches!(
            run(argv("cluster worker")),
            Err(CliError::Args(ArgError::MissingFlag("listen")))
        ));
        assert!(matches!(
            run(argv("cluster purge")),
            Err(CliError::Args(ArgError::UnknownCommand(_)))
        ));
        // Cluster tuning flags are meaningless without workers.
        let err = run(argv("search --data nowhere.csv --island-every 2")).unwrap_err();
        assert!(err.to_string().contains("requires --workers"));
        // An empty worker list is rejected before any search work.
        let err = run(argv("cluster search --data nowhere.csv --workers ,")).unwrap_err();
        assert!(matches!(err, CliError::Args(ArgError::BadValue { .. })));
    }

    #[test]
    fn trace_rejects_malformed_lines() {
        let dir = std::env::temp_dir().join("ecad_cli_trace_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.jsonl");
        std::fs::write(&bad, "{\"seq\":0,\"level\":\"info\",\"target\":\"t\",\"event\":\"a\",\"fields\":{}}\nnot json\n").unwrap();
        let err = run(argv(&format!("trace --file {}", bad.display()))).unwrap_err();
        assert!(err.to_string().contains(":2"));

        let gap = dir.join("gap.jsonl");
        std::fs::write(
            &gap,
            "{\"seq\":1,\"level\":\"info\",\"target\":\"t\",\"event\":\"a\",\"fields\":{}}\n",
        )
        .unwrap();
        let err = run(argv(&format!("trace --file {}", gap.display()))).unwrap_err();
        assert!(err.to_string().contains("out of order"));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Interrupted-run → `--resume` round trip: a run halted mid-budget
    /// with a checkpoint, then resumed, must produce the same final
    /// trace CSV and a byte-identical JSONL event stream as one
    /// uninterrupted run with the same seed.
    #[test]
    fn search_checkpoint_resume_round_trip() {
        let dir = std::env::temp_dir().join("ecad_cli_resume_test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("toy.csv");
        let cfg = dir.join("toy.ini");
        let ds = ecad_dataset::synth::SyntheticSpec::new("toy", 120, 6, 2)
            .with_seed(1)
            .generate();
        csv::write_dataset_file(&ds, &data).unwrap();
        std::fs::write(
            &cfg,
            "[nna]\nmax_layers = 1\nmax_neurons = 12\n[optimization]\nevaluations = 12\npopulation = 4\nepochs = 3\n",
        )
        .unwrap();

        let full_jsonl = dir.join("full.jsonl");
        let full_csv = dir.join("full.csv");
        let base = |jsonl: &std::path::Path, csv_out: &std::path::Path| {
            format!(
                "search --data {} --config {} --seed 5 --threads 1 --trace-out {} --trace {}",
                data.display(),
                cfg.display(),
                jsonl.display(),
                csv_out.display()
            )
        };
        run(argv(&base(&full_jsonl, &full_csv))).unwrap();

        let part_jsonl = dir.join("part.jsonl");
        let part_csv = dir.join("part.csv");
        let ck = dir.join("state.json");
        let halted = run(argv(&format!(
            "{} --checkpoint {} --checkpoint-every 3 --halt-after 6",
            base(&part_jsonl, &part_csv),
            ck.display()
        )))
        .unwrap();
        assert!(halted.contains("halted early"), "got: {halted}");
        assert!(ck.exists());

        let resumed = run(argv(&format!(
            "{} --checkpoint {} --resume",
            base(&part_jsonl, &part_csv),
            ck.display()
        )))
        .unwrap();
        assert!(resumed.contains("12 models evaluated"), "got: {resumed}");

        let full = std::fs::read_to_string(&full_jsonl).unwrap();
        let part = std::fs::read_to_string(&part_jsonl).unwrap();
        assert_eq!(
            full, part,
            "resumed JSONL trace must be byte-identical to the uninterrupted run"
        );
        assert_eq!(
            std::fs::read_to_string(&full_csv).unwrap(),
            std::fs::read_to_string(&part_csv).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `ecad analyze` turns a search's JSONL trace into a convergence
    /// report in all three formats, with a monotone hypervolume column,
    /// and errors on traces with no epoch events.
    #[test]
    fn analyze_reports_epochs_from_search_trace() {
        let dir = std::env::temp_dir().join("ecad_cli_analyze_test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("toy.csv");
        let cfg = dir.join("toy.ini");
        let ds = ecad_dataset::synth::SyntheticSpec::new("toy", 120, 6, 2)
            .with_seed(1)
            .generate();
        csv::write_dataset_file(&ds, &data).unwrap();
        std::fs::write(
            &cfg,
            "[nna]\nmax_layers = 1\nmax_neurons = 12\n[optimization]\nevaluations = 8\npopulation = 4\nepochs = 3\nobjectives = accuracy, log_throughput\nweights = 1.0, 0.08\n",
        )
        .unwrap();
        let jsonl = dir.join("events.jsonl");
        run(argv(&format!(
            "search --data {} --config {} --seed 5 --threads 1 --trace-out {}",
            data.display(),
            cfg.display(),
            jsonl.display()
        )))
        .unwrap();

        let text = run(argv(&format!("analyze --file {}", jsonl.display()))).unwrap();
        assert!(text.contains("2 epoch(s)"), "got: {text}");
        assert!(text.contains("hypervolume curve"));
        assert!(!text.contains("WARNING"));

        let json = run(argv(&format!(
            "analyze --file {} --format json",
            jsonl.display()
        )))
        .unwrap();
        let parsed = rt::json::Json::parse(&json).unwrap();
        let epochs = parsed
            .get("epochs")
            .and_then(rt::json::Json::as_array)
            .unwrap();
        assert_eq!(epochs.len(), 2);
        let hv: Vec<f64> = epochs
            .iter()
            .map(|e| e.get("hypervolume").and_then(rt::json::Json::as_f64).unwrap())
            .collect();
        assert!(hv.windows(2).all(|w| w[1] >= w[0]), "hv not monotone: {hv:?}");

        let csv_text = run(argv(&format!(
            "analyze --file {} --format csv",
            jsonl.display()
        )))
        .unwrap();
        assert_eq!(csv_text.lines().count(), 3);

        // A trace with no epoch events (run shorter than one
        // population) is a domain error, so scripts can gate on it.
        let short = dir.join("short.jsonl");
        run(argv(&format!(
            "search --data {} --config {} --seed 5 --threads 1 --evaluations 3 --trace-out {}",
            data.display(),
            cfg.display(),
            short.display()
        )))
        .unwrap();
        let err = run(argv(&format!("analyze --file {}", short.display()))).unwrap_err();
        assert!(err.to_string().contains("no epoch events"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_summary_reports_kind_spans() {
        let dir = std::env::temp_dir().join("ecad_cli_trace_summary");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        std::fs::write(
            &path,
            "{\"seq\":0,\"level\":\"info\",\"target\":\"t\",\"event\":\"a\",\"fields\":{}}\n\
             {\"seq\":1,\"level\":\"info\",\"target\":\"t\",\"event\":\"b\",\"fields\":{}}\n\
             {\"seq\":2,\"level\":\"info\",\"target\":\"t\",\"event\":\"a\",\"fields\":{}}\n",
        )
        .unwrap();
        let out = run(argv(&format!("trace --file {} --summary", path.display()))).unwrap();
        assert!(out.contains("all lines parse"));
        assert!(out.contains("3 events spanning seq 0..2"), "got: {out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The observatory is read-only: a served run's JSONL trace is
    /// byte-identical to the same seeded run without `--serve`.
    #[test]
    fn serve_does_not_perturb_trace() {
        let dir = std::env::temp_dir().join("ecad_cli_serve_test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("toy.csv");
        let cfg = dir.join("toy.ini");
        let ds = ecad_dataset::synth::SyntheticSpec::new("toy", 120, 6, 2)
            .with_seed(1)
            .generate();
        csv::write_dataset_file(&ds, &data).unwrap();
        std::fs::write(
            &cfg,
            "[nna]\nmax_layers = 1\nmax_neurons = 12\n[optimization]\nevaluations = 6\npopulation = 4\nepochs = 3\n",
        )
        .unwrap();
        let plain = dir.join("plain.jsonl");
        let served = dir.join("served.jsonl");
        let base = format!(
            "search --data {} --config {} --seed 5 --threads 1",
            data.display(),
            cfg.display()
        );
        run(argv(&format!("{base} --trace-out {}", plain.display()))).unwrap();
        let out = run(argv(&format!(
            "{base} --trace-out {} --serve 127.0.0.1:0",
            served.display()
        )))
        .unwrap();
        assert!(out.contains("observatory served"), "got: {out}");
        assert_eq!(
            std::fs::read_to_string(&plain).unwrap(),
            std::fs::read_to_string(&served).unwrap(),
            "serving must not perturb the event stream"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The profiling acceptance path end-to-end: a seeded single-thread
    /// search with `--profile-out --profile-clock ticks` writes a
    /// byte-identical profile across two runs, the attribution table
    /// puts `gemm` under `train`, `ecad profile` renders the file in
    /// all three formats, and `ecad trace --summary` rebuilds the tree
    /// from the profiled trace.
    #[test]
    fn search_profile_out_deterministic_with_gemm_under_train() {
        let dir = std::env::temp_dir().join("ecad_cli_profile_test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("toy.csv");
        let cfg = dir.join("toy.ini");
        let ds = ecad_dataset::synth::SyntheticSpec::new("toy", 120, 6, 2)
            .with_seed(1)
            .generate();
        csv::write_dataset_file(&ds, &data).unwrap();
        std::fs::write(
            &cfg,
            "[nna]\nmax_layers = 1\nmax_neurons = 12\n[optimization]\nevaluations = 6\npopulation = 4\nepochs = 3\n",
        )
        .unwrap();
        let p1 = dir.join("p1.json");
        let p2 = dir.join("p2.json");
        let base = |out: &std::path::Path| {
            format!(
                "search --data {} --config {} --seed 5 --threads 1 \
                 --profile-out {} --profile-clock ticks",
                data.display(),
                cfg.display(),
                out.display()
            )
        };
        let out = run(argv(&base(&p1))).unwrap();
        assert!(out.contains("profile (ticks clock) written"), "got: {out}");
        assert!(out.contains("gemm"), "got: {out}");
        run(argv(&base(&p2))).unwrap();
        assert_eq!(
            std::fs::read_to_string(&p1).unwrap(),
            std::fs::read_to_string(&p2).unwrap(),
            "seeded single-thread tick-clock profiles must be byte-identical"
        );

        // gemm attributes under train in the recorded tree.
        let doc = rt::json::Json::parse(&std::fs::read_to_string(&p1).unwrap()).unwrap();
        let (clock, root) = rt::prof::profile_from_json(&doc).unwrap();
        assert_eq!(clock, "ticks");
        let train = root.find("train").expect("train span recorded");
        let gemm = train.find("gemm").expect("gemm nests under train");
        assert!(gemm.calls > 0 && gemm.total_ns > 0);

        // The renderer consumes the file in all three formats.
        let table = run(argv(&format!("profile --file {}", p1.display()))).unwrap();
        assert!(table.contains("gemm") && table.contains("total"), "got: {table}");
        let collapsed = run(argv(&format!(
            "profile --file {} --format collapsed",
            p1.display()
        )))
        .unwrap();
        assert!(
            collapsed.lines().any(|l| l.contains(";gemm ")),
            "got: {collapsed}"
        );
        run(argv(&format!("profile --file {} --format json", p1.display()))).unwrap();

        // A profiled trace feeds the same table via `trace --summary`.
        let jsonl = dir.join("events.jsonl");
        run(argv(&format!(
            "{} --trace-out {}",
            base(&p1),
            jsonl.display()
        )))
        .unwrap();
        let summary = run(argv(&format!(
            "trace --file {} --summary",
            jsonl.display()
        )))
        .unwrap();
        assert!(summary.contains("span attribution"), "got: {summary}");
        assert!(summary.contains("train"), "got: {summary}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn search_profile_clock_requires_profile_out() {
        let err = run(argv("search --data x.csv --profile-clock ticks")).unwrap_err();
        assert!(err.to_string().contains("--profile-clock requires"));
        let err = run(argv("search --data x.csv --profile-out p.json --profile-clock sundial"))
            .unwrap_err();
        assert!(matches!(err, CliError::Args(ArgError::BadValue { .. })));
    }

    #[test]
    fn search_resume_without_checkpoint_is_error() {
        let err = run(argv("search --data x.csv --resume")).unwrap_err();
        assert!(err.to_string().contains("--resume requires --checkpoint"));
    }

    #[test]
    fn search_rejects_bad_log_level() {
        let err = run(argv("search --data x.csv --log-level loud")).unwrap_err();
        assert!(matches!(err, CliError::Args(ArgError::BadValue { .. })));
    }
}
