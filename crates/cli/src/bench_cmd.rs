//! `ecad bench` — run the benchmark suites and interrogate the
//! `BENCH_*.json` performance history (run / list / trend / gate).

use std::path::PathBuf;

use ecad_bench::history::{self, GateConfig};
use ecad_bench::suites;
use rt::bench::Criterion;
use rt::json::Json;

use crate::args::{ArgError, Parsed};
use crate::commands::CliError;

/// Dispatches `ecad bench <action> [flags]`. `argv` is everything
/// after the `bench` token, so the action lands in the command
/// position of the ordinary parser.
///
/// # Errors
///
/// [`CliError`] on bad arguments or I/O; [`CliError::Gate`] when the
/// regression gate fails, so the binary exits non-zero.
pub fn cmd_bench<I: IntoIterator<Item = String>>(argv: I) -> Result<String, CliError> {
    let parsed = Parsed::parse(argv).map_err(|e| match e {
        ArgError::MissingCommand => {
            ArgError::UnknownCommand("bench (needs an action: run, list, trend, gate)".to_string())
        }
        other => other,
    })?;
    match parsed.command.as_str() {
        "run" => bench_run(&parsed),
        "list" => bench_list(&parsed),
        "trend" => bench_trend(&parsed),
        "gate" => bench_gate(&parsed),
        other => Err(ArgError::UnknownCommand(format!("bench {other}")).into()),
    }
}

/// Where the history lives / the report goes: `--dir` when given, else
/// the enclosing repository root.
fn history_dir(p: &Parsed) -> PathBuf {
    p.get("dir")
        .map(PathBuf::from)
        .unwrap_or_else(history::default_dir)
}

fn get_f64(p: &Parsed, flag: &str) -> Result<Option<f64>, CliError> {
    match p.get(flag) {
        None => Ok(None),
        Some(text) => text
            .parse::<f64>()
            .ok()
            .filter(|v| v.is_finite() && *v >= 0.0)
            .map(Some)
            .ok_or_else(|| {
                CliError::Args(ArgError::BadValue {
                    flag: format!("--{flag}"),
                    value: text.to_string(),
                })
            }),
    }
}

/// `text` (default) or `json`.
fn format_of(p: &Parsed) -> Result<&str, CliError> {
    match p.get("format").unwrap_or("text") {
        f @ ("text" | "json") => Ok(f),
        other => Err(CliError::Args(ArgError::BadValue {
            flag: "--format".to_string(),
            value: other.to_string(),
        })),
    }
}

fn load(p: &Parsed) -> Result<Vec<history::HistoryFile>, CliError> {
    history::load_history(&history_dir(p)).map_err(|e| CliError::Domain(e.to_string()))
}

/// `ecad bench run --suite NAME|all`: executes the suite in-process
/// and merges the measurements into `BENCH_<date>.json`.
fn bench_run(p: &Parsed) -> Result<String, CliError> {
    p.check_allowed(&[
        "suite",
        "filter",
        "quick",
        "profile",
        "iters",
        "sample-size",
        "out",
        "dir",
    ])?;
    let suite = p.require("suite")?;
    let selected: Vec<&str> = if suite == "all" {
        suites::names()
    } else {
        vec![suite]
    };

    let dir = history_dir(p);
    let out = match p.get("out") {
        Some(path) => PathBuf::from(path),
        None => {
            let meta = rt::bench::ReportMeta::capture(&dir);
            dir.join(rt::bench::bench_file_name(&meta.date))
        }
    };

    let mut text = String::new();
    for name in selected {
        let mut c = Criterion::default();
        c.quiet();
        if p.is_set("quick") {
            c.quick();
        }
        if p.is_set("profile") {
            c.profile();
        }
        if p.get("iters").is_some() {
            c.iters(p.get_parse("iters", 1u64)?);
        }
        if p.get("sample-size").is_some() {
            c.sample_size(p.get_parse("sample-size", 10usize)?);
        }
        if let Some(f) = p.get("filter") {
            c.filter(f);
        }
        suites::run_suite(name, &mut c).map_err(CliError::Domain)?;
        let results = c.take_results();
        for r in &results {
            text.push_str(&format!(
                "{name}/{}: p50 {:.1} ns/iter, p95 {:.1} ns/iter ({} samples x {} iters)\n",
                r.id, r.summary.p50_ns, r.summary.p95_ns, r.samples, r.iters_per_sample
            ));
        }
        suites::write_report(&out, name, &results)
            .map_err(|e| CliError::Io(format!("{}: {e}", out.display())))?;
        text.push_str(&format!(
            "wrote {} ({} benchmark(s), suite {name})\n",
            out.display(),
            results.len()
        ));
    }
    Ok(text)
}

/// `ecad bench list`: the recorded history, newest last.
fn bench_list(p: &Parsed) -> Result<String, CliError> {
    p.check_allowed(&["dir", "limit", "format"])?;
    let format = format_of(p)?;
    let limit: usize = p.get_parse("limit", 10usize)?;
    let history = load(p)?;
    let shown = &history[history.len().saturating_sub(limit)..];

    if format == "json" {
        let files: Vec<Json> = shown
            .iter()
            .map(|f| {
                Json::object()
                    .insert("file", f.name.as_str())
                    .insert("date", f.report.date.as_str())
                    .insert("created_utc", f.report.created_utc.as_str())
                    .insert("git_rev", f.report.git_rev.as_str())
                    .insert("benchmarks", f.report.entries.len() as f64)
            })
            .collect();
        return Ok(Json::object()
            .insert("reports", Json::Array(files))
            .pretty()
            + "\n");
    }
    if shown.is_empty() {
        return Ok(format!(
            "no BENCH_*.json reports under {}\n",
            history_dir(p).display()
        ));
    }
    let mut out = String::new();
    for f in shown {
        let mut suites: Vec<&str> = f.report.entries.iter().map(|e| e.suite.as_str()).collect();
        suites.dedup();
        out.push_str(&format!(
            "{}  {}  rev {}  {} benchmark(s) [{}]\n",
            f.name,
            f.report.created_utc,
            f.report.git_rev,
            f.report.entries.len(),
            suites.join(", ")
        ));
    }
    Ok(out)
}

/// `ecad bench trend`: per-benchmark trajectory and delta vs the
/// windowed baseline.
fn bench_trend(p: &Parsed) -> Result<String, CliError> {
    p.check_allowed(&["dir", "suite", "filter", "window", "format"])?;
    let format = format_of(p)?;
    let window: usize = p.get_parse("window", 3usize)?;
    let history = load(p)?;
    let rows = history::trend(&history, p.get("suite"), p.get("filter"), window);

    if format == "json" {
        let rows: Vec<Json> = rows
            .iter()
            .map(|row| {
                let points: Vec<Json> = row
                    .points
                    .iter()
                    .map(|pt| {
                        Json::object()
                            .insert("date", pt.date.as_str())
                            .insert("git_rev", pt.git_rev.as_str())
                            .insert("ns_per_iter_p50", pt.ns_p50)
                            .insert("ns_per_iter_p95", pt.ns_p95)
                    })
                    .collect();
                Json::object()
                    .insert("suite", row.suite.as_str())
                    .insert("id", row.id.as_str())
                    .insert("baseline_p95", row.baseline_p95)
                    .insert("delta_pct", row.delta_pct)
                    .insert("points", Json::Array(points))
            })
            .collect();
        return Ok(Json::object().insert("trends", Json::Array(rows)).pretty() + "\n");
    }
    if rows.is_empty() {
        return Ok("no benchmark history matches the selection\n".to_string());
    }
    Ok(history::trend_table(&rows))
}

/// `ecad bench gate`: the regression gate; a failing verdict is
/// returned as [`CliError::Gate`] so the process exits non-zero.
fn bench_gate(p: &Parsed) -> Result<String, CliError> {
    p.check_allowed(&[
        "dir",
        "suite",
        "filter",
        "threshold-p95-ms",
        "max-p95-regression-pct",
        "window-size",
        "required-passes",
        "format",
    ])?;
    let format = format_of(p)?;
    let config = GateConfig {
        suite: p.get("suite").map(str::to_string),
        filter: p.get("filter").map(str::to_string),
        threshold_p95_ms: get_f64(p, "threshold-p95-ms")?,
        max_p95_regression_pct: get_f64(p, "max-p95-regression-pct")?,
        window_size: p.get_parse("window-size", GateConfig::default().window_size)?,
        required_passes: p.get_parse("required-passes", GateConfig::default().required_passes)?,
    };
    let history = load(p)?;
    let verdict = history::gate(&history, &config);
    let rendered = if format == "json" {
        verdict.to_json().pretty() + "\n"
    } else {
        history::gate_table(&verdict)
    };
    if verdict.passed {
        Ok(rendered)
    } else {
        Err(CliError::Gate(rendered))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn write_history(dir: &std::path::Path, date: &str, p95: f64) {
        std::fs::create_dir_all(dir).unwrap();
        std::fs::write(
            dir.join(format!("BENCH_{date}.json")),
            format!(
                r#"{{
  "schema_version": 1,
  "date": "{date}",
  "created_utc": "{date}T00:00:00Z",
  "git_rev": "test",
  "benchmarks": [
    {{
      "suite": "kernels",
      "id": "gemm/naive/64",
      "ns_per_iter_p50": {p50},
      "ns_per_iter_p95": {p95},
      "ns_per_iter_min": {p50},
      "ns_per_iter_max": {p95},
      "ns_per_iter_mean": {p50},
      "throughput_per_s": 1000.0,
      "samples": 10,
      "iters_per_sample": 100
    }}
  ]
}}
"#,
                p50 = p95 * 0.8,
            ),
        )
        .unwrap();
    }

    #[test]
    fn bench_needs_action() {
        let err = crate::run(argv("bench")).unwrap_err();
        assert!(err.to_string().contains("needs an action"));
        let err = crate::run(argv("bench frobnicate")).unwrap_err();
        assert!(err.to_string().contains("bench frobnicate"));
    }

    #[test]
    fn run_rejects_unknown_suite() {
        let err = crate::run(argv("bench run --suite nothing")).unwrap_err();
        assert!(err.to_string().contains("unknown suite"));
    }

    /// `bench run` on a real (filtered, pinned-iteration) kernel suite
    /// writes a parseable report, and list/trend/gate consume it.
    #[test]
    fn run_list_trend_gate_round_trip() {
        let dir = std::env::temp_dir().join("ecad_cli_bench_roundtrip");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let out = crate::run(argv(&format!(
            "bench run --suite kernels --filter argmax --iters 1 --sample-size 2 --dir {}",
            dir.display()
        )))
        .unwrap();
        assert!(out.contains("kernels/matrix/argmax_rows_512"), "got: {out}");
        assert!(out.contains("wrote "), "got: {out}");

        let listed = crate::run(argv(&format!("bench list --dir {}", dir.display()))).unwrap();
        assert!(listed.contains("BENCH_"), "got: {listed}");
        assert!(listed.contains("[kernels]"), "got: {listed}");

        let trend = crate::run(argv(&format!("bench trend --dir {}", dir.display()))).unwrap();
        assert!(trend.contains("argmax_rows_512"), "got: {trend}");

        // A single run has no baseline: the gate passes with a warning.
        let gated = crate::run(argv(&format!(
            "bench gate --dir {} --max-p95-regression-pct 10",
            dir.display()
        )))
        .unwrap();
        assert!(gated.contains("PASS"), "got: {gated}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gate_fails_on_synthetic_regression() {
        let dir = std::env::temp_dir().join("ecad_cli_bench_gate_fail");
        std::fs::remove_dir_all(&dir).ok();
        write_history(&dir, "2026-01-01", 100.0);
        write_history(&dir, "2026-01-02", 1000.0); // 10x regression
        let err = crate::run(argv(&format!(
            "bench gate --dir {} --max-p95-regression-pct 50 --window-size 1",
            dir.display()
        )))
        .unwrap_err();
        assert!(matches!(err, CliError::Gate(_)));
        assert!(err.to_string().contains("FAIL"), "got: {err}");
        assert!(err.to_string().contains("regressed"), "got: {err}");

        // The same history passes under a generous limit.
        let ok = crate::run(argv(&format!(
            "bench gate --dir {} --max-p95-regression-pct 2000 --window-size 1",
            dir.display()
        )))
        .unwrap();
        assert!(ok.contains("PASS"), "got: {ok}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gate_empty_dir_passes_with_warning() {
        let dir = std::env::temp_dir().join("ecad_cli_bench_gate_empty");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let out = crate::run(argv(&format!("bench gate --dir {}", dir.display()))).unwrap();
        assert!(out.contains("PASS"));
        assert!(out.contains("vacuously"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gate_rejects_malformed_history_with_location() {
        let dir = std::env::temp_dir().join("ecad_cli_bench_gate_malformed");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("BENCH_2026-01-01.json"), "{\n  \"schema_version\": 1,\n  oops\n}\n")
            .unwrap();
        let err = crate::run(argv(&format!("bench gate --dir {}", dir.display()))).unwrap_err();
        assert!(err.to_string().contains("BENCH_2026-01-01.json:3:"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trend_json_format_parses(){
        let dir = std::env::temp_dir().join("ecad_cli_bench_trend_json");
        std::fs::remove_dir_all(&dir).ok();
        write_history(&dir, "2026-01-01", 100.0);
        write_history(&dir, "2026-01-02", 110.0);
        let out = crate::run(argv(&format!(
            "bench trend --dir {} --format json",
            dir.display()
        )))
        .unwrap();
        let json = Json::parse(&out).unwrap();
        let trends = json.get("trends").and_then(Json::as_array).unwrap();
        assert_eq!(trends.len(), 1);
        let gate_json = crate::run(argv(&format!(
            "bench gate --dir {} --max-p95-regression-pct 50 --format json",
            dir.display()
        )))
        .unwrap();
        let verdict = Json::parse(&gate_json).unwrap();
        assert_eq!(verdict.get("passed").and_then(Json::as_bool), Some(true));
        std::fs::remove_dir_all(&dir).ok();
    }
}
