//! `ecad analyze`: post-processes a JSONL event trace (written by
//! `ecad search --trace-out`) into a convergence report.
//!
//! The report is built from the engine's per-epoch `epoch` events plus
//! the fault-tolerance warnings (`retry`, `eval_timeout`,
//! `worker_respawn`, `stall`). Resumed runs append to the same file
//! with continued sequence numbers, so an interrupted-then-resumed
//! trace analyzes exactly like an uninterrupted one; concatenations of
//! independent runs (sequence restarts) are tolerated too — `analyze`
//! never enforces ordering, that is `ecad trace`'s job.

use rt::json::Json;

use crate::args::Parsed;
use crate::commands::CliError;

/// One parsed line of a JSONL event trace: the event kind, its
/// sequence number, and the structured fields.
pub struct TraceEvent {
    /// Event kind (the `event` key).
    pub event: String,
    /// Sequence number (the `seq` key).
    pub seq: u64,
    /// The `fields` object.
    pub fields: Json,
}

/// Parses every line of a JSONL trace into [`TraceEvent`]s.
///
/// # Errors
///
/// Returns [`CliError::Domain`] for unparseable lines or lines missing
/// the `event`/`seq`/`fields` keys.
pub fn parse_events(path: &str, text: &str) -> Result<Vec<TraceEvent>, CliError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let json = Json::parse(line)
            .map_err(|e| CliError::Domain(format!("{path}:{}: not valid JSON: {e}", i + 1)))?;
        let field = |key: &str| {
            json.get(key)
                .cloned()
                .ok_or_else(|| CliError::Domain(format!("{path}:{}: missing {key:?}", i + 1)))
        };
        events.push(TraceEvent {
            event: field("event")?.as_str().unwrap_or_default().to_string(),
            seq: field("seq")?.as_f64().unwrap_or(0.0) as u64,
            fields: field("fields")?,
        });
    }
    Ok(events)
}

/// One row of the per-epoch convergence table, extracted from an
/// `epoch` event's fields.
pub struct EpochRow {
    /// 1-based epoch index.
    pub epoch: u64,
    /// Unique evaluations completed at the snapshot.
    pub evaluations: u64,
    /// Best scalar fitness so far.
    pub best_fitness: f64,
    /// Median population fitness.
    pub fitness_p50: f64,
    /// Pareto-archive hypervolume (unit-box convention).
    pub hypervolume: f64,
    /// Pareto-archive size.
    pub archive_size: u64,
    /// Mean per-gene entropy of the population, in bits.
    pub gene_entropy_bits: f64,
    /// Mean pairwise normalized genome distance.
    pub mean_distance: f64,
    /// Dedup-cache hit rate.
    pub cache_hit_rate: f64,
    /// Whether the stall detector considered the search stalled.
    pub stalled: bool,
}

fn num(fields: &Json, key: &str) -> f64 {
    fields.get(key).and_then(Json::as_f64).unwrap_or(f64::NAN)
}

impl EpochRow {
    fn from_fields(fields: &Json) -> Self {
        Self {
            epoch: num(fields, "epoch") as u64,
            evaluations: num(fields, "evaluations") as u64,
            best_fitness: num(fields, "best_fitness"),
            fitness_p50: num(fields, "fitness_p50"),
            hypervolume: num(fields, "hypervolume"),
            archive_size: num(fields, "archive_size") as u64,
            gene_entropy_bits: num(fields, "gene_entropy_bits"),
            mean_distance: num(fields, "mean_distance"),
            cache_hit_rate: num(fields, "cache_hit_rate"),
            stalled: matches!(fields.get("stalled"), Some(Json::Bool(true))),
        }
    }

    fn to_json(&self) -> Json {
        Json::object()
            .insert("epoch", self.epoch)
            .insert("evaluations", self.evaluations)
            .insert("best_fitness", self.best_fitness)
            .insert("fitness_p50", self.fitness_p50)
            .insert("hypervolume", self.hypervolume)
            .insert("archive_size", self.archive_size)
            .insert("gene_entropy_bits", self.gene_entropy_bits)
            .insert("mean_distance", self.mean_distance)
            .insert("cache_hit_rate", self.cache_hit_rate)
            .insert("stalled", self.stalled)
    }
}

/// Counts of the fault-tolerance and lifecycle events that frame the
/// convergence story.
#[derive(Default)]
pub struct FaultSummary {
    /// `stall` warnings (detector rising edges).
    pub stalls: usize,
    /// `retry` warnings.
    pub retries: usize,
    /// `eval_timeout` warnings.
    pub timeouts: usize,
    /// `worker_respawn` warnings.
    pub respawns: usize,
    /// `infeasible` warnings.
    pub infeasible: usize,
    /// `resume` events (interrupted-run continuations in this file).
    pub resumes: usize,
    /// `checkpoint` events.
    pub checkpoints: usize,
    /// `worker_lost` warnings (a remote slot exhausted its reconnect
    /// budget and retired).
    pub workers_lost: usize,
    /// `cluster_degraded` warnings (every remote slot retired; the
    /// run fell back to local evaluation).
    pub degraded: usize,
    /// `migration` events (island elites folded into the archive).
    pub migrations: usize,
}

impl FaultSummary {
    fn count(events: &[TraceEvent]) -> Self {
        let mut s = Self::default();
        for e in events {
            match e.event.as_str() {
                "stall" => s.stalls += 1,
                "retry" => s.retries += 1,
                "eval_timeout" => s.timeouts += 1,
                "worker_respawn" => s.respawns += 1,
                "infeasible" => s.infeasible += 1,
                "resume" => s.resumes += 1,
                "checkpoint" => s.checkpoints += 1,
                "worker_lost" => s.workers_lost += 1,
                "cluster_degraded" => s.degraded += 1,
                "migration" => s.migrations += 1,
                _ => {}
            }
        }
        s
    }
}

/// A low-resolution ASCII rendering of the hypervolume curve: one
/// column per epoch, eight height levels, normalized to the final
/// (maximal) value.
fn hypervolume_curve(rows: &[EpochRow]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = rows
        .iter()
        .map(|r| r.hypervolume)
        .fold(0.0f64, f64::max);
    if max <= 0.0 {
        return "(hypervolume stayed at zero)".to_string();
    }
    rows.iter()
        .map(|r| {
            let frac = (r.hypervolume / max).clamp(0.0, 1.0);
            BARS[((frac * 7.0).round() as usize).min(7)]
        })
        .collect()
}

fn render_text(path: &str, rows: &[EpochRow], faults: &FaultSummary) -> String {
    let mut out = format!("{path}: {} epoch(s)\n\n", rows.len());
    out.push_str(&format!(
        "{:>5} {:>6} {:>12} {:>12} {:>12} {:>7} {:>9} {:>6} {:>6}  {}\n",
        "epoch", "evals", "best", "p50", "hypervol", "archive", "entropy", "dist", "cache", "stalled"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>5} {:>6} {:>12.6} {:>12.6} {:>12.8} {:>7} {:>9.3} {:>6.3} {:>5.1}%  {}\n",
            r.epoch,
            r.evaluations,
            r.best_fitness,
            r.fitness_p50,
            r.hypervolume,
            r.archive_size,
            r.gene_entropy_bits,
            r.mean_distance,
            100.0 * r.cache_hit_rate,
            if r.stalled { "yes" } else { "-" },
        ));
    }
    out.push_str(&format!("\nhypervolume curve: {}\n", hypervolume_curve(rows)));
    let monotone = rows
        .windows(2)
        .all(|w| w[1].hypervolume >= w[0].hypervolume);
    if !monotone {
        out.push_str("WARNING: hypervolume column is not monotone — mixed traces?\n");
    }
    out.push_str(&format!(
        "\nfaults: {} stall(s), {} retry(ies), {} timeout(s), {} respawn(s), {} infeasible\n",
        faults.stalls, faults.retries, faults.timeouts, faults.respawns, faults.infeasible
    ));
    if faults.resumes > 0 || faults.checkpoints > 0 {
        out.push_str(&format!(
            "lifecycle: {} checkpoint(s), {} resume(s)\n",
            faults.checkpoints, faults.resumes
        ));
    }
    if faults.workers_lost > 0 || faults.degraded > 0 || faults.migrations > 0 {
        out.push_str(&format!(
            "cluster: {} worker(s) lost, {} degradation(s), {} migration(s)\n",
            faults.workers_lost, faults.degraded, faults.migrations
        ));
    }
    out
}

fn render_json(rows: &[EpochRow], faults: &FaultSummary) -> String {
    let epochs = Json::Array(rows.iter().map(EpochRow::to_json).collect());
    let summary = Json::object()
        .insert("epochs", rows.len())
        .insert("final_hypervolume", rows.last().map_or(0.0, |r| r.hypervolume))
        .insert("final_best_fitness", rows.last().map_or(f64::NAN, |r| r.best_fitness))
        .insert("stalls", faults.stalls)
        .insert("retries", faults.retries)
        .insert("timeouts", faults.timeouts)
        .insert("respawns", faults.respawns)
        .insert("infeasible", faults.infeasible)
        .insert("checkpoints", faults.checkpoints)
        .insert("resumes", faults.resumes)
        .insert("workers_lost", faults.workers_lost)
        .insert("cluster_degraded", faults.degraded)
        .insert("migrations", faults.migrations);
    let mut report = Json::object().insert("epochs", epochs);
    report = report.insert("summary", summary);
    let mut text = report.pretty();
    text.push('\n');
    text
}

fn render_csv(rows: &[EpochRow]) -> String {
    let mut out = String::from(
        "epoch,evaluations,best_fitness,fitness_p50,hypervolume,archive_size,gene_entropy_bits,mean_distance,cache_hit_rate,stalled\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{}\n",
            r.epoch,
            r.evaluations,
            r.best_fitness,
            r.fitness_p50,
            r.hypervolume,
            r.archive_size,
            r.gene_entropy_bits,
            r.mean_distance,
            r.cache_hit_rate,
            r.stalled,
        ));
    }
    out
}

/// `ecad analyze --file TRACE.jsonl [--format text|json|csv]`.
///
/// # Errors
///
/// Returns [`CliError::Domain`] when the trace has no `epoch` events —
/// a run too short for even one epoch, or a trace recorded without
/// analytics — so scripts can gate on the exit code.
pub fn cmd_analyze(p: &Parsed) -> Result<String, CliError> {
    p.check_allowed(&["file", "format"])?;
    let path = p.require("file")?;
    let text = std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
    let events = parse_events(path, &text)?;
    let rows: Vec<EpochRow> = events
        .iter()
        .filter(|e| e.event == "epoch")
        .map(|e| EpochRow::from_fields(&e.fields))
        .collect();
    if rows.is_empty() {
        return Err(CliError::Domain(format!(
            "{path}: no epoch events — run long enough for one population \
             (or lower epoch_size) and record with --trace-out"
        )));
    }
    let faults = FaultSummary::count(&events);
    match p.get("format").unwrap_or("text") {
        "text" => Ok(render_text(path, &rows, &faults)),
        "json" => Ok(render_json(&rows, &faults)),
        "csv" => Ok(render_csv(&rows)),
        other => Err(CliError::Args(crate::args::ArgError::BadValue {
            flag: "--format".to_string(),
            value: other.to_string(),
        })),
    }
}

/// Per-kind census with sequence spans, shared by `ecad trace
/// --summary`: for each event kind, the count and the first/last
/// sequence number it occurs at, plus the overall span.
pub fn kind_summary(events: &[TraceEvent]) -> String {
    let mut kinds: Vec<(String, usize, u64, u64)> = Vec::new();
    for e in events {
        match kinds.iter_mut().find(|(name, ..)| *name == e.event) {
            Some((_, n, _, last)) => {
                *n += 1;
                *last = e.seq;
            }
            None => kinds.push((e.event.clone(), 1, e.seq, e.seq)),
        }
    }
    kinds.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut out = String::new();
    match (events.first(), events.last()) {
        (Some(first), Some(last)) => out.push_str(&format!(
            "summary: {} events spanning seq {}..{}\n\n",
            events.len(),
            first.seq,
            last.seq
        )),
        _ => out.push_str("summary: empty trace\n"),
    }
    if !kinds.is_empty() {
        out.push_str(&format!(
            "{:>8} {:>9} {:>9}  {}\n",
            "count", "first", "last", "event"
        ));
        for (name, n, first, last) in &kinds {
            out.push_str(&format!("{n:>8} {first:>9} {last:>9}  {name}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epoch_line(seq: u64, epoch: u64, hv: f64, stalled: bool) -> String {
        format!(
            "{{\"seq\":{seq},\"level\":\"info\",\"target\":\"t\",\"event\":\"epoch\",\"fields\":{{\
             \"epoch\":{epoch},\"evaluations\":{},\"best_fitness\":0.5,\"fitness_p50\":0.4,\
             \"hypervolume\":{hv},\"archive_size\":2,\"gene_entropy_bits\":1.5,\
             \"mean_distance\":0.3,\"cache_hit_rate\":0.1,\"stalled\":{stalled}}}}}",
            epoch * 8
        )
    }

    fn warn_line(seq: u64, event: &str) -> String {
        format!(
            "{{\"seq\":{seq},\"level\":\"warn\",\"target\":\"t\",\"event\":\"{event}\",\"fields\":{{}}}}"
        )
    }

    #[test]
    fn parses_epoch_rows_and_faults() {
        let text = [
            epoch_line(0, 1, 0.1, false),
            warn_line(1, "retry"),
            warn_line(2, "eval_timeout"),
            epoch_line(3, 2, 0.2, true),
            warn_line(4, "stall"),
        ]
        .join("\n");
        let events = parse_events("t.jsonl", &text).unwrap();
        let rows: Vec<EpochRow> = events
            .iter()
            .filter(|e| e.event == "epoch")
            .map(|e| EpochRow::from_fields(&e.fields))
            .collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].evaluations, 8);
        assert!((rows[1].hypervolume - 0.2).abs() < 1e-12);
        assert!(rows[1].stalled && !rows[0].stalled);
        let faults = FaultSummary::count(&events);
        assert_eq!(
            (faults.retries, faults.timeouts, faults.stalls),
            (1, 1, 1)
        );
    }

    #[test]
    fn cluster_fault_counts_surface_in_both_renderings() {
        let text = [
            epoch_line(0, 1, 0.1, false),
            warn_line(1, "worker_lost"),
            warn_line(2, "worker_lost"),
            warn_line(3, "cluster_degraded"),
            warn_line(4, "migration"),
        ]
        .join("\n");
        let events = parse_events("t.jsonl", &text).unwrap();
        let faults = FaultSummary::count(&events);
        assert_eq!(
            (faults.workers_lost, faults.degraded, faults.migrations),
            (2, 1, 1)
        );
        let report = render_text("t", &[], &faults);
        assert!(report.contains("cluster: 2 worker(s) lost, 1 degradation(s), 1 migration(s)"));
        let json = Json::parse(&render_json(&[], &faults)).unwrap();
        let summary = json.get("summary").unwrap();
        assert_eq!(
            summary.get("workers_lost").and_then(Json::as_f64),
            Some(2.0)
        );
        assert_eq!(
            summary.get("cluster_degraded").and_then(Json::as_f64),
            Some(1.0)
        );
        assert_eq!(summary.get("migrations").and_then(Json::as_f64), Some(1.0));
        // A fault-free trace stays silent about the cluster line.
        let clean = render_text("t", &[], &FaultSummary::default());
        assert!(!clean.contains("cluster:"));
    }

    #[test]
    fn text_report_flags_non_monotone_hypervolume() {
        let good = vec![
            EpochRow::from_fields(&Json::parse("{\"epoch\":1,\"hypervolume\":0.1}").unwrap()),
            EpochRow::from_fields(&Json::parse("{\"epoch\":2,\"hypervolume\":0.2}").unwrap()),
        ];
        let report = render_text("t", &good, &FaultSummary::default());
        assert!(!report.contains("WARNING"));
        let bad = vec![
            EpochRow::from_fields(&Json::parse("{\"epoch\":1,\"hypervolume\":0.2}").unwrap()),
            EpochRow::from_fields(&Json::parse("{\"epoch\":2,\"hypervolume\":0.1}").unwrap()),
        ];
        let report = render_text("t", &bad, &FaultSummary::default());
        assert!(report.contains("WARNING"));
    }

    #[test]
    fn json_report_round_trips() {
        let rows = vec![
            EpochRow::from_fields(
                &Json::parse("{\"epoch\":1,\"evaluations\":8,\"hypervolume\":0.25}").unwrap(),
            ),
        ];
        let text = render_json(&rows, &FaultSummary::default());
        let parsed = Json::parse(&text).unwrap();
        let epochs = parsed.get("epochs").and_then(Json::as_array).unwrap();
        assert_eq!(epochs.len(), 1);
        assert_eq!(epochs[0].get("hypervolume").and_then(Json::as_f64), Some(0.25));
        assert_eq!(
            parsed.get("summary").and_then(|s| s.get("final_hypervolume")).and_then(Json::as_f64),
            Some(0.25)
        );
    }

    #[test]
    fn csv_report_has_one_row_per_epoch() {
        let rows = vec![
            EpochRow::from_fields(&Json::parse("{\"epoch\":1,\"hypervolume\":0.1}").unwrap()),
            EpochRow::from_fields(&Json::parse("{\"epoch\":2,\"hypervolume\":0.2}").unwrap()),
        ];
        let csv = render_csv(&rows);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("epoch,evaluations,best_fitness"));
    }

    #[test]
    fn kind_summary_reports_spans() {
        let text = [
            warn_line(0, "a"),
            warn_line(1, "b"),
            warn_line(2, "a"),
        ]
        .join("\n");
        let events = parse_events("t.jsonl", &text).unwrap();
        let out = kind_summary(&events);
        assert!(out.contains("3 events spanning seq 0..2"));
        assert!(out.contains('a') && out.contains('b'));
    }

    #[test]
    fn curve_handles_flat_zero() {
        let rows = vec![EpochRow::from_fields(
            &Json::parse("{\"epoch\":1,\"hypervolume\":0}").unwrap(),
        )];
        assert!(hypervolume_curve(&rows).contains("zero"));
    }
}
