//! # ecad-cli
//!
//! Library backing the `ecad` command-line tool — the "streamlined"
//! front end the paper's Future Directions section promises: point it
//! at a CSV table and a configuration file and get a co-designed
//! MLP + hardware configuration back.
//!
//! The binary is a thin shell over [`run`]; everything it does
//! (argument parsing, command dispatch, report formatting) lives here
//! so it is unit-testable.
//!
//! ```text
//! ecad search   --data table.csv [--config ecad.ini] [--trace out.csv]
//!               [--serve ADDR] [--trace-out out.jsonl]
//!               [--profile-out out.json [--profile-clock wall|ticks]]
//! ecad analyze  --file trace.jsonl [--format text|json|csv]
//! ecad trace    --file trace.jsonl [--require E1,E2] [--summary]
//! ecad profile  --file profile.json [--format text|json|collapsed]
//! ecad datasets [--generate NAME --out FILE [--samples N] [--seed N]]
//! ecad devices
//! ecad estimate --layers 784,256,10 [--device NAME] [--batch N]
//!               [--grid RxCxV[,ILMxILN]] [--banks N]
//! ecad bench    run|list|trend|gate [--suite NAME] [--filter SUBSTR]
//!               [--threshold-p95-ms MS] [--max-p95-regression-pct PCT]
//! ecad cluster  worker --listen HOST:PORT [--serve ADDR]
//! ecad cluster  search --workers HOST:PORT,... [--serve ADDR]
//! ```

#![warn(missing_docs)]

mod analyze;
mod args;
mod bench_cmd;
mod commands;
mod profile;

pub use args::{ArgError, Parsed};
pub use commands::{run, CliError};
