//! The paper's §III entry flow: a CSV table plus a configuration file
//! drive the whole search.

use ecad_repro::core::config::FlowConfig;
use ecad_repro::core::prelude::*;
use ecad_repro::dataset::{csv, synth::SyntheticSpec};

#[test]
fn csv_export_import_search_round_trip() {
    // 1. A problem owner exports their dataset as CSV.
    let original = SyntheticSpec::new("customer-churn", 200, 10, 2)
        .with_class_sep(3.0)
        .with_seed(11)
        .generate();
    let dir = std::env::temp_dir().join("ecad_csv_flow_test");
    std::fs::create_dir_all(&dir).unwrap();
    let csv_path = dir.join("churn.csv");
    csv::write_dataset_file(&original, &csv_path).unwrap();

    // 2. The flow ingests the CSV (name comes from the file stem).
    let loaded = csv::read_dataset_file(&csv_path).unwrap();
    assert_eq!(loaded.name(), "churn");
    assert_eq!(loaded.len(), original.len());
    assert_eq!(loaded.n_features(), original.n_features());
    assert_eq!(loaded.labels(), original.labels());
    // f32 values round-trip through decimal text exactly via Rust's
    // shortest-repr float formatting.
    assert_eq!(loaded.features(), original.features());

    // 3. A config file describes the search; the engine runs it.
    let config = FlowConfig::from_ini(
        "
[nna]
max_layers = 2
max_neurons = 16

[optimization]
evaluations = 8
population = 4
seed = 13
epochs = 4
",
    )
    .unwrap();
    let result = Search::from_config(&config, &loaded).run();
    assert_eq!(result.stats().models_evaluated, 8);
    assert!(result.best_by_accuracy().is_some());

    std::fs::remove_file(&csv_path).ok();
}

#[test]
fn malformed_csv_is_rejected_with_location() {
    let err = csv::read_dataset("bad", "f0,label\n1.0,0\noops,1\n").unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("line 3"),
        "error should locate the bad row: {msg}"
    );
}
