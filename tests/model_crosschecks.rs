//! Cross-crate consistency checks: the same candidate seen through the
//! MLP crate, the hardware models, and the engine must agree.

use ecad_repro::hw::fpga::{FpgaDevice, FpgaModel, GridConfig};
use ecad_repro::hw::gpu::{GpuDevice, GpuModel};
use ecad_repro::hw::total_flops;
use ecad_repro::mlp::{Activation, MlpTopology};

fn topology() -> MlpTopology {
    MlpTopology::builder(784, 10)
        .hidden(256, Activation::Relu, true)
        .hidden(128, Activation::Tanh, false)
        .build()
}

#[test]
fn gemm_shapes_flops_agree_with_hw_accounting() {
    let topo = topology();
    let shapes = topo.gemm_shapes(1);
    // The hw crate's total_flops over batch-1 shapes equals the MLP
    // crate's per-sample count.
    assert_eq!(total_flops(&shapes) as u64, topo.flops_per_sample());
    // And scales linearly in the batch.
    let shapes64 = topo.gemm_shapes(64);
    assert_eq!(total_flops(&shapes64) as u64, 64 * topo.flops_per_sample());
}

#[test]
fn fpga_effective_time_is_consistent_with_flops() {
    let topo = topology();
    let grid = GridConfig::new(8, 8, 4, 4, 8).unwrap();
    let model = FpgaModel::new(FpgaDevice::arria10_gx1150(1));
    let shapes = topo.gemm_shapes(32);
    let perf = model.evaluate(&grid, &shapes).unwrap();
    let implied_flops = perf.effective_gflops * 1e9 * perf.total_time_s;
    let actual = total_flops(&shapes);
    assert!(
        (implied_flops - actual).abs() / actual < 1e-9,
        "effective x time must equal the workload's FLOPs"
    );
}

#[test]
fn gpu_and_fpga_score_the_same_workload() {
    // The Table IV pattern: one topology, both platforms.
    let topo = topology();
    let fpga = FpgaModel::new(FpgaDevice::stratix10_2800(4));
    let grid = GridConfig::new(8, 8, 4, 4, 8).unwrap();
    let fpga_perf = fpga.evaluate(&grid, &topo.gemm_shapes(32)).unwrap();

    let gpu = GpuModel::new(GpuDevice::titan_x());
    let gpu_perf = gpu.evaluate(&topo.gemm_shapes(1024), &[true, false, true]);

    assert!(fpga_perf.outputs_per_s > 0.0);
    assert!(gpu_perf.outputs_per_s > 0.0);
    // Efficiency semantics agree: both are fractions of a roofline.
    assert!((0.0..=1.0).contains(&fpga_perf.efficiency));
    assert!((0.0..=1.0).contains(&gpu_perf.efficiency));
}

#[test]
fn batch_one_latency_ordering_favours_fpga() {
    // The co-design claim behind §III-D: with adequate DRAM bandwidth,
    // the FPGA's systolic mapping serves single samples at lower
    // latency than a launch-overhead-bound GPU.
    let topo = topology();
    let fpga = FpgaModel::new(FpgaDevice::arria10_gx1150(4));
    let grid = GridConfig::new(8, 8, 1, 1, 8).unwrap();
    let fpga_perf = fpga.evaluate(&grid, &topo.gemm_shapes(1)).unwrap();
    let gpu = GpuModel::new(GpuDevice::titan_x());
    let gpu_perf = gpu.evaluate(&topo.gemm_shapes(1), &[true, true, true]);
    assert!(
        fpga_perf.latency_s < gpu_perf.latency_s,
        "fpga {} vs gpu {}",
        fpga_perf.latency_s,
        gpu_perf.latency_s
    );
}

#[test]
fn paper_peak_numbers_hold_in_the_models() {
    // Arria 10 at 250 MHz: 759 GFLOP/s; Stratix 10 at 400 MHz: 4.6 TF.
    assert!((FpgaDevice::arria10_gx1150(1).peak_flops() / 1e9 - 759.0).abs() < 1e-6);
    assert!((FpgaDevice::stratix10_2800(4).peak_flops() / 1e12 - 4.608).abs() < 1e-3);
    // A full-device grid cannot exceed the device peak.
    let device = FpgaDevice::arria10_gx1150(1);
    let grid = GridConfig::new(12, 12, 4, 4, 8).unwrap(); // 1152 DSPs
    assert!(grid.peak_flops(&device) <= device.peak_flops());
}
