//! End-to-end integration tests: dataset → evolutionary search →
//! hardware metrics, across crate boundaries.

use ecad_repro::core::config::FlowConfig;
use ecad_repro::core::prelude::*;
use ecad_repro::dataset::benchmarks::{self, Benchmark};
use ecad_repro::hw::fpga::FpgaDevice;
use ecad_repro::hw::gpu::GpuDevice;
use ecad_repro::mlp::TrainConfig;

fn small_dataset() -> ecad_repro::dataset::Dataset {
    benchmarks::load(Benchmark::CreditG)
        .with_samples(240)
        .with_seed(5)
        .generate()
}

fn fast_trainer() -> TrainConfig {
    let mut cfg = TrainConfig::fast();
    cfg.epochs = 6;
    cfg
}

#[test]
fn fpga_search_end_to_end() {
    let ds = small_dataset();
    let result = Search::on_dataset(&ds)
        .target(HwTarget::Fpga(FpgaDevice::arria10_gx1150(1)))
        .objectives(ObjectiveSet::accuracy_and_throughput())
        .space(
            SearchSpace::fpga_default()
                .with_neurons(4, 48)
                .with_layers(1, 2),
        )
        .evaluations(18)
        .population(8)
        .seed(1)
        .trainer(fast_trainer())
        .run();

    assert_eq!(result.stats().models_evaluated, 18);
    let best = result
        .best_by_accuracy()
        .expect("feasible candidates exist");
    assert!(
        best.measurement.accuracy > 0.5,
        "accuracy {}",
        best.measurement.accuracy
    );
    assert!(best.measurement.hw.outputs_per_s() > 0.0);
    // FPGA metrics carry the physical worker's estimates.
    match &best.measurement.hw {
        HwMetrics::Fpga {
            power_w,
            fmax_mhz,
            dsp_util,
            ..
        } => {
            assert!(*power_w > 20.0 && *power_w < 35.0, "power {power_w}");
            assert!(*fmax_mhz > 150.0 && *fmax_mhz <= 250.0, "fmax {fmax_mhz}");
            assert!((0.0..=1.0).contains(dsp_util));
        }
        other => panic!("expected FPGA metrics, got {other:?}"),
    }
}

#[test]
fn gpu_search_end_to_end() {
    let ds = small_dataset();
    let result = Search::on_dataset(&ds)
        .target(HwTarget::Gpu(GpuDevice::titan_x()))
        .objectives(ObjectiveSet::accuracy_and_throughput())
        .space(
            SearchSpace::gpu_default()
                .with_neurons(4, 48)
                .with_layers(1, 2),
        )
        .evaluations(15)
        .population(8)
        .seed(2)
        .trainer(fast_trainer())
        .run();
    let best = result.best().expect("candidates evaluated");
    assert!(matches!(best.measurement.hw, HwMetrics::Gpu { .. }));
    // GPU efficiency on small MLPs must be low (the paper's §IV-D).
    assert!(best.measurement.hw.efficiency() < 0.2);
}

#[test]
fn search_is_reproducible_across_runs() {
    let ds = small_dataset();
    let run = || {
        Search::on_dataset(&ds)
            .space(
                SearchSpace::fpga_default()
                    .with_neurons(4, 32)
                    .with_layers(1, 2),
            )
            .evaluations(12)
            .population(6)
            .seed(77)
            .trainer(fast_trainer())
            .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.trace().len(), b.trace().len());
    for (x, y) in a.trace().iter().zip(b.trace()) {
        assert_eq!(x.genome, y.genome);
        assert_eq!(x.measurement.accuracy, y.measurement.accuracy);
    }
}

#[test]
fn config_file_drives_search() {
    let text = "
[nna]
max_layers = 2
min_neurons = 4
max_neurons = 24

[hardware]
target = fpga
device = arria10
ddr_banks = 2

[optimization]
objectives = accuracy, log_throughput
weights = 1.0, 0.02
evaluations = 10
population = 5
seed = 9
epochs = 5
";
    let config = FlowConfig::from_ini(text).expect("valid config");
    let ds = small_dataset();
    let result = Search::from_config(&config, &ds).run();
    assert_eq!(result.stats().models_evaluated, 10);
    assert_eq!(result.target_name(), "Arria 10 GX 1150");
    // Every evaluated topology respects the configured bounds.
    for e in result.trace() {
        assert!(e.genome.nna.layers.len() <= 2);
        for l in &e.genome.nna.layers {
            assert!((4..=24).contains(&l.neurons));
        }
    }
}

#[test]
fn multithreaded_search_completes_and_stays_feasible() {
    let ds = small_dataset();
    let result = Search::on_dataset(&ds)
        .space(
            SearchSpace::fpga_default()
                .with_neurons(4, 32)
                .with_layers(1, 2),
        )
        .evaluations(16)
        .population(8)
        .seed(3)
        .threads(4)
        .trainer(fast_trainer())
        .run();
    assert_eq!(result.stats().models_evaluated, 16);
    assert!(result.best_by_accuracy().is_some());
}

#[test]
fn pareto_front_members_are_mutually_non_dominated() {
    let ds = small_dataset();
    let result = Search::on_dataset(&ds)
        .objectives(ObjectiveSet::accuracy_and_throughput())
        .space(
            SearchSpace::fpga_default()
                .with_neurons(4, 48)
                .with_layers(1, 2),
        )
        .evaluations(20)
        .population(8)
        .seed(4)
        .trainer(fast_trainer())
        .run();
    let front = result.pareto_accuracy_throughput();
    assert!(!front.is_empty());
    for a in &front {
        for b in &front {
            let dominates = a.measurement.accuracy >= b.measurement.accuracy
                && a.measurement.hw.outputs_per_s() >= b.measurement.hw.outputs_per_s()
                && (a.measurement.accuracy > b.measurement.accuracy
                    || a.measurement.hw.outputs_per_s() > b.measurement.hw.outputs_per_s());
            assert!(!dominates, "front contains a dominated member");
        }
    }
}

#[test]
fn accuracy_only_and_codesign_searches_disagree_on_hardware() {
    // The co-design claim in one test: adding the throughput objective
    // changes which hardware configurations survive.
    let ds = small_dataset();
    let run = |objectives: ObjectiveSet| {
        Search::on_dataset(&ds)
            .objectives(objectives)
            .space(
                SearchSpace::fpga_default()
                    .with_neurons(4, 48)
                    .with_layers(1, 2),
            )
            .evaluations(25)
            .population(10)
            .seed(5)
            .trainer(fast_trainer())
            .run()
    };
    let acc_only = run(ObjectiveSet::accuracy_only());
    let codesign = run(ObjectiveSet::accuracy_and_throughput());
    let mean_throughput = |r: &SearchResult| {
        let v: Vec<f64> = r
            .trace()
            .iter()
            .filter(|e| e.measurement.hw.is_feasible())
            .map(|e| e.measurement.hw.outputs_per_s())
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    // The later half of a co-design trace should lean faster than the
    // accuracy-only trace's later half.
    let half = |r: &SearchResult| {
        let t = r.trace();
        let v: Vec<f64> = t[t.len() / 2..]
            .iter()
            .filter(|e| e.measurement.hw.is_feasible())
            .map(|e| e.measurement.hw.outputs_per_s())
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    assert!(
        half(&codesign) >= half(&acc_only) * 0.5,
        "codesign {} vs acc-only {} (sanity: both positive: {} {})",
        half(&codesign),
        half(&acc_only),
        mean_throughput(&codesign),
        mean_throughput(&acc_only)
    );
}
