//! End-to-end fault-tolerance tests: searches over real datasets with
//! injected worker panics, stalls, and transient failures still
//! complete their full evaluation budget, and interrupted runs resume
//! from checkpoints with byte-identical JSONL traces.

use std::sync::Arc;
use std::time::Duration;

use ecad_repro::core::checkpoint::{CheckpointPolicy, CheckpointState};
use ecad_repro::core::engine::{Engine, EvolutionConfig, SelectionMode};
use ecad_repro::core::prelude::*;
use ecad_repro::dataset::benchmarks::{self, Benchmark};
use ecad_repro::hw::gpu::GpuDevice;
use ecad_repro::mlp::TrainConfig;
use ecad_repro::rt::obs::{JsonlSink, Level, Obs};
use ecad_repro::rt::rand::rngs::StdRng;
use ecad_repro::rt::rand::SeedableRng;

fn small_dataset() -> ecad_repro::dataset::Dataset {
    benchmarks::load(Benchmark::CreditG)
        .with_samples(240)
        .with_seed(5)
        .generate()
}

fn fast_trainer() -> TrainConfig {
    let mut cfg = TrainConfig::fast();
    cfg.epochs = 6;
    cfg
}

fn tmp_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ecad-e2e-fault");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A search whose evaluator panics, stalls past the deadline, and
/// returns transient verdicts on scheduled calls completes its entire
/// budget, and the engine's fault counters match the injection schedule
/// exactly.
#[test]
fn fault_injected_search_completes_full_budget() {
    let ds = small_dataset();
    let mut rng = StdRng::seed_from_u64(31 ^ 0x5eed_0011);
    let (train, test) = ds.split(0.25, &mut rng);
    let inner = CodesignEvaluator::new(
        train,
        test,
        fast_trainer(),
        HwTarget::Gpu(GpuDevice::titan_x()),
        31,
    );
    // Call 2 panics, call 5 returns a transient verdict, call 8 stalls
    // past the 1s deadline. Each is retried once and succeeds; the
    // stall additionally burns the deadline and respawns its slot.
    let schedule = FaultSchedule::new()
        .at(2, FaultKind::Panic)
        .at(5, FaultKind::Transient)
        .at(8, FaultKind::Stall(Duration::from_secs(4)));
    let (panics, stalls, transients) = schedule.counts();
    let evaluator = FaultyEvaluator::new(Arc::new(inner), schedule);

    let cfg = EvolutionConfig {
        population: 6,
        evaluations: 12,
        tournament: 2,
        crossover_rate: 0.5,
        seed: 31,
        threads: 1,
        selection: SelectionMode::WeightedScalar,
        eval_timeout: Some(Duration::from_secs(1)),
        max_retries: 2,
        retry_backoff: Duration::ZERO,
        ..EvolutionConfig::small()
    };
    let out = Engine::new(
        Arc::new(evaluator),
        SearchSpace::gpu_default().with_neurons(4, 32).with_layers(1, 2),
        ObjectiveSet::accuracy_only(),
        cfg,
    )
    .run();

    assert!(!out.halted);
    assert_eq!(out.stats.models_evaluated, 12);
    assert_eq!(out.trace.len(), 12);
    assert_eq!(out.stats.timeout_count, stalls);
    assert_eq!(out.stats.respawn_count, stalls);
    assert_eq!(out.stats.retry_count, panics + stalls + transients);
    // Every fault was retried to success: no infeasible survivors.
    assert!(out.trace.iter().all(|e| e.measurement.hw.is_feasible()));
    assert!(out.best().is_some());
}

/// A seeded single-thread search interrupted at a checkpoint boundary
/// and resumed produces the same best genome, final population, and a
/// byte-identical JSONL event trace as the uninterrupted run.
#[test]
fn interrupted_search_resumes_byte_identically() {
    let ds = small_dataset();
    let dir = tmp_dir();
    let pid = std::process::id();
    let full_trace = dir.join(format!("full-{pid}.jsonl"));
    let part_trace = dir.join(format!("part-{pid}.jsonl"));
    let ck = dir.join(format!("state-{pid}.json"));
    for p in [&full_trace, &part_trace, &ck] {
        let _ = std::fs::remove_file(p);
    }

    let search = |obs: Obs| {
        Search::on_dataset(&ds)
            .space(
                SearchSpace::fpga_default()
                    .with_neurons(4, 32)
                    .with_layers(1, 2),
            )
            .evaluations(14)
            .population(6)
            .seed(77)
            .trainer(fast_trainer())
            .obs(obs)
    };
    let file_obs = |sink: JsonlSink| Obs::builder().sink(sink).build();

    let full = {
        let obs = file_obs(JsonlSink::create(Level::Debug, &full_trace).unwrap());
        let result = search(obs.clone()).run();
        obs.flush();
        result
    };

    let halted = {
        let obs = file_obs(JsonlSink::create(Level::Debug, &part_trace).unwrap());
        let result = search(obs.clone())
            .checkpoint(CheckpointPolicy::new(&ck, 7))
            .halt_after(7)
            .run();
        obs.flush();
        result
    };
    assert!(halted.halted());
    assert_eq!(halted.trace().len(), 7);

    let resumed = {
        let obs = file_obs(JsonlSink::append(Level::Debug, &part_trace).unwrap());
        let state = CheckpointState::load(&ck).unwrap();
        let result = search(obs.clone()).resume_from(state).run();
        obs.flush();
        result
    };
    assert!(!resumed.halted());
    assert_eq!(resumed.trace().len(), 14);

    assert_eq!(
        full.best().unwrap().genome,
        resumed.best().unwrap().genome,
        "resumed run must converge to the same best genome"
    );
    let genomes = |r: &SearchResult| -> Vec<String> {
        r.trace().iter().map(|e| e.genome.describe()).collect()
    };
    assert_eq!(genomes(&full), genomes(&resumed));

    let full_bytes = std::fs::read_to_string(&full_trace).unwrap();
    let part_bytes = std::fs::read_to_string(&part_trace).unwrap();
    assert_eq!(
        full_bytes, part_bytes,
        "interrupted + resumed JSONL trace must be byte-identical to the uninterrupted run"
    );

    for p in [&full_trace, &part_trace, &ck] {
        let _ = std::fs::remove_file(p);
    }
}

/// Seeded soak: a randomized fault schedule at a moderate rate still
/// lets the engine finish its budget with feasible survivors.
#[test]
fn seeded_fault_soak_finishes_budget() {
    let ds = small_dataset();
    let mut rng = StdRng::seed_from_u64(13 ^ 0x5eed_0011);
    let (train, test) = ds.split(0.25, &mut rng);
    let inner = CodesignEvaluator::new(
        train,
        test,
        fast_trainer(),
        HwTarget::Gpu(GpuDevice::titan_x()),
        13,
    );
    // Panics and transients only (rate 0.2 over the first 20 calls):
    // stalls are exercised by the scheduled test above without paying
    // a deadline wait per stall here.
    let schedule = FaultSchedule::seeded(13, 20, 0.2, Duration::ZERO);
    let evaluator = FaultyEvaluator::new(Arc::new(inner), schedule);

    let cfg = EvolutionConfig {
        population: 6,
        evaluations: 10,
        tournament: 2,
        crossover_rate: 0.5,
        seed: 13,
        threads: 1,
        selection: SelectionMode::WeightedScalar,
        eval_timeout: Some(Duration::from_secs(5)),
        max_retries: 3,
        retry_backoff: Duration::ZERO,
        ..EvolutionConfig::small()
    };
    let out = Engine::new(
        Arc::new(evaluator),
        SearchSpace::gpu_default().with_neurons(4, 32).with_layers(1, 2),
        ObjectiveSet::accuracy_only(),
        cfg,
    )
    .run();
    assert_eq!(out.stats.models_evaluated, 10);
    assert!(out.best().is_some());
}
