//! Property-based tests over the core data structures and invariants,
//! spanning crate boundaries. Runs on `rt::check` (see `crates/rt`),
//! with 64 cases per property.

use ecad_repro::core::pareto;
use ecad_repro::core::space::SearchSpace;
use ecad_repro::dataset::{csv, folds, synth::SyntheticSpec};
use ecad_repro::hw::fpga::{FpgaDevice, FpgaModel, GridConfig};
use ecad_repro::hw::gpu::{GpuDevice, GpuModel};
use ecad_repro::tensor::{gemm, init, ops, Matrix};
use rt::check::{ascii_string, vec};
use rt::rand::rngs::StdRng;
use rt::rand::SeedableRng;
use rt::{prop_assert, prop_assert_eq, prop_assume};

/// Builds a random matrix from shape-plus-seed coordinates. The rt
/// harness has no `prop_flat_map`, so properties draw `(rows, cols,
/// seed)` and materialize the matrix here.
fn small_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    init::uniform(&mut rng, rows, cols, 10.0)
}

rt::prop! {
    #![cases(64)]

    /// Blocked GEMM agrees with the naive reference on arbitrary shapes.
    fn gemm_blocked_equals_naive(
        m in 1usize..20, k in 1usize..20, n in 1usize..20, seed in 0u64..1000
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = init::uniform(&mut rng, m, k, 2.0);
        let b = init::uniform(&mut rng, k, n, 2.0);
        let fast = gemm::matmul(&a, &b);
        let slow = gemm::matmul_naive(&a, &b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-4 * (1.0 + x.abs().max(y.abs())));
        }
    }

    /// (A·B)ᵀ = Bᵀ·Aᵀ.
    fn gemm_transpose_identity(
        m in 1usize..10, k in 1usize..10, n in 1usize..10, seed in 0u64..100
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = init::uniform(&mut rng, m, k, 1.0);
        let b = init::uniform(&mut rng, k, n, 1.0);
        let lhs = gemm::matmul(&a, &b).transposed();
        let rhs = gemm::matmul(&b.transposed(), &a.transposed());
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-4 * (1.0 + x.abs()));
        }
    }

    /// Transpose is an involution and preserves the multiset of values.
    fn transpose_involution(r in 1usize..=12, c in 1usize..=12, seed in 0u64..1000) {
        let m = small_matrix(r, c, seed);
        prop_assert_eq!(m.transposed().transposed(), m);
    }

    /// Softmax rows are probability distributions for any finite input.
    fn softmax_rows_are_distributions(r in 1usize..=10, c in 1usize..=10, seed in 0u64..1000) {
        let m = small_matrix(r, c, seed);
        let p = ops::softmax_rows(&m);
        prop_assert!(p.all_finite());
        for r in 0..p.rows() {
            let s: f32 = p.row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            prop_assert!(p.row(r).iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    /// one_hot ∘ argmax is the identity on label vectors.
    fn one_hot_argmax_round_trip(labels in vec(0usize..7, 1..50)) {
        let oh = ops::one_hot(&labels, 7);
        prop_assert_eq!(oh.argmax_rows(), labels);
    }

    /// K-fold partitions: every index in exactly one test fold, train
    /// and test disjoint and covering.
    fn kfold_partition_invariants(n in 10usize..120, k in 2usize..10, seed in 0u64..100) {
        prop_assume!(k <= n);
        let mut rng = StdRng::seed_from_u64(seed);
        let folds = folds::kfold(n, k, &mut rng);
        let mut seen = vec![0usize; n];
        for f in &folds {
            for &i in &f.test { seen[i] += 1; }
            let mut all: Vec<usize> = f.train.iter().chain(&f.test).copied().collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    /// CSV round-trip preserves arbitrary field content.
    fn csv_field_round_trip(rows in vec(vec(ascii_string(0..=12), 1..5), 1..8)) {
        // All rows must have the same width for a rectangular table.
        let width = rows[0].len();
        let rect: Vec<Vec<String>> = rows.into_iter().map(|mut r| {
            r.resize(width, String::new());
            r
        }).collect();
        let text = csv::emit(&rect);
        let parsed = csv::parse(&text).unwrap();
        // Rows that are entirely empty fields serialize to blank lines,
        // which the parser skips; skip them in the expectation too.
        let expected: Vec<Vec<String>> = rect
            .into_iter()
            .filter(|r| !(r.len() == 1 && r[0].is_empty()))
            .collect();
        prop_assert_eq!(parsed, expected);
    }

    /// Mutation and crossover never escape the search space.
    fn genetic_operators_closed(seed in 0u64..500, steps in 1usize..40) {
        let space = SearchSpace::fpga_default();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = space.sample(&mut rng);
        let other = space.sample(&mut rng);
        for _ in 0..steps {
            g = space.mutate(&g, &mut rng);
            prop_assert!(space.contains(&g));
            g = space.crossover(&g, &other, &mut rng);
            prop_assert!(space.contains(&g));
        }
    }

    /// Pareto front: every non-front point is dominated by someone;
    /// no front point is dominated by anyone.
    fn pareto_front_definition(points in vec(vec(0.0f64..1.0, 2..4usize), 1..40)) {
        let dims = points[0].len();
        let rect: Vec<Vec<f64>> = points.into_iter().map(|mut p| { p.resize(dims, 0.0); p }).collect();
        let front = pareto::pareto_front(&rect);
        for (i, p) in rect.iter().enumerate() {
            let dominated = rect.iter().enumerate().any(|(j, q)| j != i && pareto::dominates(q, p));
            prop_assert_eq!(front.contains(&i), !dominated);
        }
    }

    /// Pareto-archive hypervolume (the per-epoch convergence metric):
    /// monotone non-decreasing under any insertion sequence, bounded
    /// by the unit box, and zero only while the archive is empty.
    fn archive_hypervolume_monotone(points in vec(vec(-1e3f64..1e3, 2..4usize), 1..40)) {
        let dims = points[0].len();
        let rect: Vec<Vec<f64>> = points.into_iter().map(|mut p| { p.resize(dims, 0.0); p }).collect();
        let mut archive = ecad_repro::core::analytics::ParetoArchive::new();
        let mut prev = archive.hypervolume();
        prop_assert_eq!(prev, 0.0);
        for p in &rect {
            archive.insert(p);
            let hv = archive.hypervolume();
            prop_assert!(hv >= prev - 1e-12, "hypervolume fell: {} -> {}", prev, hv);
            prop_assert!(hv <= 1.0 + 1e-12);
            prop_assert!(hv > 0.0); // finite points always dominate some volume
            prev = hv;
        }
        prop_assert!(archive.len() >= 1 && archive.len() <= rect.len());
    }

    /// FPGA model monotonicity: adding DDR banks never lowers
    /// throughput, and effective never exceeds the compute roofline.
    fn fpga_bandwidth_monotonicity(
        rows_i in 0usize..4, cols_i in 0usize..4, il in 1u32..8, vec_i in 0usize..4,
        m in 1usize..128, k in 1usize..1024, n in 1usize..512
    ) {
        let dims = [2u32, 4, 8, 16];
        let vecs = [1u32, 2, 4, 8];
        let grid = GridConfig::new(dims[rows_i], dims[cols_i], il, il, vecs[vec_i]).unwrap();
        let mut prev = 0.0f64;
        for banks in [1u32, 2, 4] {
            let model = FpgaModel::new(FpgaDevice::arria10_gx1150(banks));
            if let Ok(perf) = model.evaluate(&grid, &[(m, k, n)]) {
                prop_assert!(perf.outputs_per_s >= prev * (1.0 - 1e-12));
                prop_assert!(perf.effective_gflops <= perf.compute_roofline_gflops * (1.0 + 1e-9));
                prop_assert!((0.0..=1.0).contains(&perf.efficiency));
                prop_assert!(perf.latency_s <= perf.total_time_s * (1.0 + 1e-9));
                prev = perf.outputs_per_s;
            }
        }
    }

    /// GPU model: more batch never increases per-output cost; efficiency
    /// stays a fraction.
    fn gpu_batching_monotonicity(k in 1usize..1024, n in 1usize..512) {
        let model = GpuModel::new(GpuDevice::titan_x());
        let mut prev = 0.0f64;
        for batch in [1usize, 16, 256, 4096] {
            let perf = model.evaluate(&[(batch, k, n)], &[true]);
            prop_assert!(perf.outputs_per_s >= prev * (1.0 - 1e-9));
            prop_assert!((0.0..=1.0).contains(&perf.efficiency));
            prev = perf.outputs_per_s;
        }
    }

    /// Synthetic datasets always satisfy their spec.
    fn synthetic_spec_shape_invariants(
        n in 2usize..80, d in 1usize..20, classes in 2usize..6, seed in 0u64..200
    ) {
        let ds = SyntheticSpec::new("prop", n, d, classes).with_seed(seed).generate();
        prop_assert_eq!(ds.len(), n);
        prop_assert_eq!(ds.n_features(), d);
        prop_assert_eq!(ds.n_classes(), classes);
        prop_assert!(ds.features().all_finite());
        prop_assert!(ds.labels().iter().all(|&l| l < classes));
    }
}
